// Determinism: identical configurations and seeds produce bit-identical
// simulations; different seeds produce different traffic.
#include <gtest/gtest.h>

#include <vector>

#include "noc/network/connection_manager.hpp"
#include "noc/network/network.hpp"
#include "noc/traffic/generator.hpp"
#include "noc/traffic/sink.hpp"
#include "noc/traffic/workload.hpp"
#include "sim/simulator.hpp"

namespace mango::noc {
namespace {

struct RunResult {
  std::uint64_t events = 0;
  std::uint64_t gs_flits = 0;
  std::uint64_t be_packets = 0;
  std::vector<sim::Time> gs_delivery_times;
  std::vector<sim::Time> be_delivery_times;
};

RunResult run_scenario(std::uint64_t seed) {
  sim::Simulator sim;
  MeshConfig mesh{3, 3, RouterConfig{}, 1};
  Network net(sim, mesh);
  ConnectionManager mgr(net, NodeId{0, 0});
  RunResult result;

  const Connection& conn = mgr.open_direct({0, 0}, {2, 2});
  net.na({2, 2}).set_gs_handler([&](LocalIfaceIdx, Flit&&) {
    ++result.gs_flits;
    result.gs_delivery_times.push_back(sim.now());
  });
  for (std::size_t i = 0; i < net.node_count(); ++i) {
    const NodeId n = net.node_at(i);
    // The GS handler at (2,2) coexists with a BE handler on the same NA.
    net.na(n).set_be_handler([&](BePacket&&) {
      ++result.be_packets;
      result.be_delivery_times.push_back(sim.now());
    });
  }

  GsStreamSource::Options gopt;
  gopt.period_ps = 5000;
  gopt.max_flits = 100;
  GsStreamSource gs(sim, net.na({0, 0}), conn.src_iface, 1, gopt);
  gs.start();

  BeTrafficSource::Options bopt;
  bopt.mean_interarrival_ps = 15000;
  bopt.max_packets = 50;
  bopt.seed = seed;
  BeTrafficSource be(net, {1, 1}, 2, bopt);
  be.start();

  sim.run();
  result.events = sim.events_dispatched();
  return result;
}

TEST(Determinism, IdenticalSeedsGiveIdenticalRuns) {
  const RunResult a = run_scenario(42);
  const RunResult b = run_scenario(42);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.gs_flits, b.gs_flits);
  EXPECT_EQ(a.be_packets, b.be_packets);
  ASSERT_EQ(a.gs_delivery_times.size(), b.gs_delivery_times.size());
  for (std::size_t i = 0; i < a.gs_delivery_times.size(); ++i) {
    ASSERT_EQ(a.gs_delivery_times[i], b.gs_delivery_times[i]);
  }
}

TEST(Determinism, DifferentSeedsChangeBeTraffic) {
  const RunResult a = run_scenario(1);
  const RunResult b = run_scenario(2);
  // The GS stream is rate-driven and unaffected in count; the BE source
  // still injects its 50 packets.
  EXPECT_EQ(a.gs_flits, b.gs_flits);
  EXPECT_EQ(a.be_packets, b.be_packets);
  // ...but the exponential interarrivals differ, so delivery timestamps
  // cannot coincide.
  EXPECT_NE(a.be_delivery_times, b.be_delivery_times);
}

TEST(Determinism, GsDeliveryTimestampsAreMonotonic) {
  const RunResult a = run_scenario(7);
  for (std::size_t i = 1; i < a.gs_delivery_times.size(); ++i) {
    EXPECT_LE(a.gs_delivery_times[i - 1], a.gs_delivery_times[i]);
  }
}

}  // namespace
}  // namespace mango::noc
