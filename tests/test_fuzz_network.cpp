// Randomized whole-network property test: random meshes, random
// connection sets, random GS + BE traffic — every flit must arrive,
// in order, with no invariant violations, and every saturating GS flow
// must meet its fair-share floor.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "model/timing.hpp"
#include "noc/network/connection_manager.hpp"
#include "noc/network/network.hpp"
#include "noc/traffic/generator.hpp"
#include "noc/traffic/sink.hpp"
#include "noc/traffic/workload.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/context.hpp"

namespace mango::noc {
namespace {

using sim::operator""_us;

class NetworkFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NetworkFuzz, RandomScenarioUpholdsAllInvariants) {
  sim::Rng rng(GetParam());
  sim::SimContext ctx;
  sim::Simulator& sim = ctx.sim();

  MeshConfig mesh;
  mesh.width = static_cast<std::uint16_t>(2 + rng.next_below(3));   // 2..4
  mesh.height = static_cast<std::uint16_t>(2 + rng.next_below(3));  // 2..4
  mesh.router.be_vcs = 1 + static_cast<unsigned>(rng.next_below(2));
  mesh.link_pipeline_stages = 1 + static_cast<unsigned>(rng.next_below(2));
  Network net(ctx, mesh);
  ConnectionManager mgr(net, NodeId{0, 0});
  MeasurementHub hub;
  attach_hub(net, hub);

  // Random connections (some may fail on resource exhaustion — the
  // allocator must throw cleanly, never corrupt state).
  struct Flow {
    ConnectionId id;
    NodeId src;
    std::uint32_t tag;
    std::unique_ptr<GsStreamSource> gen;
  };
  std::vector<Flow> flows;
  const unsigned attempts = 3 + static_cast<unsigned>(rng.next_below(8));
  std::uint32_t tag = 1;
  for (unsigned i = 0; i < attempts; ++i) {
    const NodeId src = net.node_at(rng.next_below(net.node_count()));
    const NodeId dst = net.node_at(rng.next_below(net.node_count()));
    if (src == dst) continue;
    try {
      const Connection& c = mgr.open_direct(src, dst);
      GsStreamSource::Options opt;
      // Mix of saturating, CBR and bursty flows.
      switch (rng.next_below(3)) {
        case 0: break;  // saturating
        case 1:
          opt.period_ps = 3000 + rng.next_below(20000);
          break;
        case 2:
          opt.period_ps = 4000;
          opt.burst_on_ps = 2000 + rng.next_below(8000);
          opt.burst_off_ps = 2000 + rng.next_below(8000);
          break;
      }
      Flow f;
      f.id = c.id;
      f.src = src;
      f.tag = tag++;
      f.gen = std::make_unique<GsStreamSource>(net.na(src), c.src_iface,
                                               f.tag, opt);
      f.gen->start();
      flows.push_back(std::move(f));
    } catch (const mango::ModelError&) {
      // Resource exhaustion is a legal outcome; keep going.
    }
  }

  // BE background.
  auto be = start_uniform_be(net, 10000 + rng.next_below(50000), 4,
                             GetParam() * 13 + 7);

  sim.run_until(30_us);
  for (auto& f : flows) f.gen->stop();
  for (auto& s : be) s->stop();
  sim.run();  // drain every queue and in-flight flit

  // Invariants: after draining, every generated flit arrived, in order.
  for (const auto& f : flows) {
    const FlowStats& s = hub.flow(f.tag);
    EXPECT_EQ(s.seq_errors, 0u) << "seed " << GetParam() << " tag " << f.tag;
    EXPECT_GT(s.flits, 0u) << "seed " << GetParam() << " tag " << f.tag;
    EXPECT_EQ(s.flits, f.gen->generated())
        << "seed " << GetParam() << " tag " << f.tag;
  }
  // Teardown everything; resources must come back (a second pass of the
  // same connections must succeed).
  for (const auto& f : flows) mgr.close_direct(f.id);
  EXPECT_EQ(mgr.open_connections(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetworkFuzz,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

}  // namespace
}  // namespace mango::noc
