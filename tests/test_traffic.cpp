// Tests for the traffic generators (CBR/burst/saturating GS, random and
// trace-driven BE) and the measurement hub.
#include <gtest/gtest.h>

#include "noc/network/connection_manager.hpp"
#include "noc/network/network.hpp"
#include "noc/traffic/generator.hpp"
#include "noc/traffic/sink.hpp"
#include "noc/traffic/workload.hpp"
#include "sim/simulator.hpp"
#include "sim/context.hpp"

namespace mango::noc {
namespace {

using sim::operator""_ns;
using sim::operator""_us;

struct TrafficFixture : ::testing::Test {
  sim::SimContext ctx;
  sim::Simulator& sim = ctx.sim();
  MeshConfig mesh{3, 2, RouterConfig{}, 1};
  Network net{ctx, mesh};
  ConnectionManager mgr{net, NodeId{0, 0}};
  MeasurementHub hub;

  void SetUp() override { attach_hub(net, hub); }
};

TEST_F(TrafficFixture, CbrSourceHitsItsRate) {
  const Connection& c = mgr.open_direct({0, 0}, {2, 0});
  GsStreamSource::Options opt;
  opt.period_ps = 10000;  // 0.1 flits/ns
  GsStreamSource src(net.na({0, 0}), c.src_iface, 1, opt);
  src.start();
  sim.run_until(50_us);
  src.stop();
  sim.run();
  // 50 us at one flit per 10 ns = ~5000 flits.
  EXPECT_NEAR(static_cast<double>(hub.flow(1).flits), 5000.0, 5.0);
  EXPECT_EQ(hub.flow(1).seq_errors, 0u);
}

TEST_F(TrafficFixture, BurstSourceAlternatesOnOff) {
  const Connection& c = mgr.open_direct({0, 0}, {1, 0});
  GsStreamSource::Options opt;
  opt.period_ps = 4000;
  opt.burst_on_ps = 20000;
  opt.burst_off_ps = 20000;  // 50% duty
  GsStreamSource src(net.na({0, 0}), c.src_iface, 2, opt);
  src.start();
  sim.run_until(80_us);
  src.stop();
  sim.run();
  // Half the CBR volume (80us / 4ns * 0.5 = ~10000 * 0.5).
  const double full = 80000.0 / 4.0;
  EXPECT_NEAR(static_cast<double>(hub.flow(2).flits), full / 2.0,
              full * 0.03);
}

TEST_F(TrafficFixture, MaxFlitsStopsTheSource) {
  const Connection& c = mgr.open_direct({0, 0}, {1, 1});
  GsStreamSource::Options opt;
  opt.period_ps = 2000;
  opt.max_flits = 123;
  GsStreamSource src(net.na({0, 0}), c.src_iface, 3, opt);
  src.start();
  sim.run();
  EXPECT_EQ(src.generated(), 123u);
  EXPECT_EQ(hub.flow(3).flits, 123u);
}

TEST_F(TrafficFixture, DelayedStartHonored) {
  const Connection& c = mgr.open_direct({0, 0}, {1, 0});
  GsStreamSource::Options opt;
  opt.period_ps = 1000;
  opt.max_flits = 10;
  GsStreamSource src(net.na({0, 0}), c.src_iface, 4, opt);
  src.start(5_us);
  sim.run();
  // First delivery can't predate the start time.
  EXPECT_GE(hub.flow(4).throughput.first(), 5_us);
}

TEST_F(TrafficFixture, TraceSourceReplaysExactly) {
  std::vector<TraceEntry> trace = {
      {1000, {2, 0}, 2, 0},
      {5000, {1, 1}, 3, 0},
      {5000, {2, 1}, 1, 0},
      {90000, {1, 0}, 4, 0},
  };
  BeTraceSource src(net, {0, 0}, 42, trace);
  src.start();
  sim.run();
  EXPECT_EQ(src.injected(), 4u);
  EXPECT_EQ(hub.flow(42).packets, 4u);
  // header latency of the last packet is measured from its trace time.
  EXPECT_GE(hub.flow(42).throughput.last(), 90000u);
}

TEST_F(TrafficFixture, TraceValidation) {
  EXPECT_THROW(BeTraceSource(net, {0, 0}, 1,
                             {{0, {0, 0}, 1, 0}}),  // dst == src
               mango::ModelError);
  EXPECT_THROW(BeTraceSource(net, {0, 0}, 1,
                             {{5000, {1, 0}, 1, 0}, {1000, {1, 0}, 1, 0}}),
               mango::ModelError);  // not time-sorted
  EXPECT_THROW(BeTraceSource(net, {9, 9}, 1, {}), mango::ModelError);
}

TEST_F(TrafficFixture, EmptyTraceIsANoOp) {
  BeTraceSource src(net, {0, 0}, 7, {});
  src.start();
  sim.run();
  EXPECT_EQ(src.injected(), 0u);
}

TEST_F(TrafficFixture, BeSourceBackpressureCountsHeldPackets) {
  BeTrafficSource::Options opt;
  opt.mean_interarrival_ps = 0;  // as fast as possible
  opt.na_queue_limit = 8;
  opt.max_packets = 200;
  opt.payload_words = 8;
  BeTrafficSource src(net, {0, 0}, 9, opt);
  src.start();
  sim.run_until(20_us);
  src.stop();
  sim.run();
  EXPECT_GT(src.offered_but_held(), 0u);  // the NA queue limit engaged
  EXPECT_LE(src.generated(), 200u);
}

TEST_F(TrafficFixture, HubAggregatesAcrossFlows) {
  const Connection& a = mgr.open_direct({0, 0}, {1, 0});
  const Connection& b = mgr.open_direct({1, 0}, {2, 0});
  for (int i = 0; i < 5; ++i) {
    Flit f1;
    f1.tag = 11;
    f1.seq = static_cast<std::uint64_t>(i);
    net.na({0, 0}).gs_send(a.src_iface, f1);
    Flit f2;
    f2.tag = 22;
    f2.seq = static_cast<std::uint64_t>(i);
    net.na({1, 0}).gs_send(b.src_iface, f2);
  }
  sim.run();
  EXPECT_TRUE(hub.has_flow(11));
  EXPECT_TRUE(hub.has_flow(22));
  EXPECT_FALSE(hub.has_flow(33));
  EXPECT_EQ(hub.total_flits(), 10u);
}

}  // namespace
}  // namespace mango::noc
