// Thousand-node scaling: route-table construction properties at 32x32,
// the header-scheme selection rule (packed source route <= 14 hops,
// table-routed beyond), byte-identity of the packed headers with the
// legacy encoder on small fabrics, end-to-end delivery over >14-hop
// routes, and the concentrated-mesh / hierarchical-composition fabrics.
#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <vector>

#include "exp/scenario.hpp"
#include "noc/common/packet.hpp"
#include "noc/network/network.hpp"
#include "noc/network/routing.hpp"
#include "noc/network/topology.hpp"
#include "noc/traffic/sink.hpp"
#include "noc/traffic/workload.hpp"
#include "sim/context.hpp"

namespace mango::noc {
namespace {

// Construction cost gate for the 1k-node fabrics: the chain-memoized
// table build is O(n^2) total (not O(n^2 * diameter)), so a 32x32 mesh
// materializes in well under a second in Release. The generous budget
// only catches an accidental return to per-pair route walks, which
// would cost minutes here, without flaking on loaded CI runners.
TEST(ScaleRouteTable, ThousandNodeConstructionStaysInBudget) {
  const MeshTopology topo(32, 32);
  const auto routing = make_routing(topo);
  const auto t0 = std::chrono::steady_clock::now();
  const RouteTable table(topo, *routing);
  const double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  EXPECT_TRUE(table.dense());
  EXPECT_EQ(table.node_count(), 1024u);
  EXPECT_LT(secs, 10.0) << "route-table construction went quadratic in "
                           "diameter again";
}

// The header-scheme selection rule: a pair is table-routed exactly when
// its route is over the paper's 14-hop source-route budget. On a 32x32
// XY mesh the hop count is the Manhattan distance, so both schemes are
// exercised across the full pair matrix.
TEST(ScaleRouteTable, TableRoutedExactlyWhenOverHeaderBudget) {
  const MeshTopology topo(32, 32);
  const auto routing = make_routing(topo);
  const RouteTable table(topo, *routing);
  std::size_t long_routes = 0;
  for (std::size_t s = 0; s < topo.node_count(); ++s) {
    for (std::size_t d = 0; d < topo.node_count(); ++d) {
      if (s == d) continue;
      const unsigned hops = table.hops(s, d);
      EXPECT_EQ(hops,
                routing->hop_distance(topo.node_at(s), topo.node_at(d)));
      EXPECT_EQ(table.table_routed(s, d), hops > kMaxHeaderCodes - 1)
          << s << "->" << d << " (" << hops << " hops)";
      if (table.table_routed(s, d)) ++long_routes;
    }
  }
  EXPECT_GT(long_routes, 0u) << "a 32x32 mesh must have >14-hop pairs";
}

// The materialized chain walk reproduces route() exactly, on every
// topology kind (phase-carrying up*/down* included).
TEST(ScaleRouteTable, AppendMovesMatchesRouteOnEveryFabric) {
  const std::vector<TopologySpec> specs = {
      TopologySpec::mesh(5, 3),
      TopologySpec::torus(4, 4),
      TopologySpec::ring(7),
      TopologySpec::irregular(GraphSpec::irregular(9)),
      TopologySpec::cmesh(3, 3, 4),
  };
  for (const TopologySpec& spec : specs) {
    const auto topo = make_topology(spec);
    const auto routing = make_routing(*topo);
    const RouteTable table(*topo, *routing);
    ASSERT_TRUE(table.dense()) << spec.label();
    for (std::size_t s = 0; s < topo->node_count(); ++s) {
      for (std::size_t d = 0; d < topo->node_count(); ++d) {
        if (s == d) continue;
        std::vector<Direction> mv;
        table.append_moves(s, d, mv);
        EXPECT_EQ(mv, routing->route(topo->node_at(s), topo->node_at(d)))
            << spec.label() << " " << s << "->" << d;
      }
    }
  }
}

// Small fabrics keep the paper's packed source-route header for every
// pair, bit-identical to the legacy per-route encoder — the guarantee
// behind the byte-identical 4x4/8x8 preset reports.
TEST(ScaleRouteTable, PackedHeadersMatchLegacyEncoderOnSmallMeshes) {
  for (const auto& wh : {std::pair<int, int>{4, 4}, {8, 8}}) {
    sim::SimContext ctx;
    NetworkConfig cfg;
    cfg.topology = TopologySpec::mesh(static_cast<std::uint16_t>(wh.first),
                                      static_cast<std::uint16_t>(wh.second));
    Network net(ctx, cfg);
    for (std::size_t s = 0; s < net.node_count(); ++s) {
      for (std::size_t d = 0; d < net.node_count(); ++d) {
        if (s == d) continue;
        for (const LocalIface iface :
             {LocalIface::kNetworkAdapter, LocalIface::kProgramming}) {
          const BeHeader h =
              net.be_header(net.node_at(s), net.node_at(d), iface);
          EXPECT_FALSE(h.table);
          EXPECT_EQ(h.word, build_be_header(net.be_route(
                                net.node_at(s), net.node_at(d), iface)));
        }
      }
    }
  }
}

// A >14-hop BE packet crosses a 16x16 mesh end to end under the
// table-routed scheme: corner to corner is 30 hops, twice the paper's
// source-route ceiling.
TEST(ScaleDelivery, ThirtyHopBePacketDeliveredOnSixteenMesh) {
  sim::SimContext ctx;
  NetworkConfig cfg;
  cfg.topology = TopologySpec::mesh(16, 16);
  Network net(ctx, cfg);
  MeasurementHub hub;
  attach_hub(net, hub);
  const NodeId src{0, 0};
  const NodeId dst{15, 15};
  ASSERT_TRUE(net.be_header(src, dst).table);
  BePacket pkt = make_be_packet(net.be_header(src, dst), {1, 2, 3}, /*tag=*/9);
  net.na(src).send_be_packet(std::move(pkt));
  ctx.sim().run();
  ASSERT_TRUE(hub.has_flow(9));
  EXPECT_EQ(hub.flow(9).packets, 1u);
  EXPECT_EQ(hub.flow(9).seq_errors, 0u);
}

// All-pairs BE delivery on a concentrated mesh: the wire graph is the
// underlying mesh, so every router-to-router route must deliver.
TEST(ScaleDelivery, CMeshAllPairsDelivered) {
  sim::SimContext ctx;
  NetworkConfig cfg;
  cfg.topology = TopologySpec::cmesh(3, 3, 4);
  Network net(ctx, cfg);
  MeasurementHub hub;
  attach_hub(net, hub);
  const std::size_t n = net.node_count();
  std::uint32_t tag = 1;
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t d = 0; d < n; ++d) {
      if (s == d) continue;
      BePacket pkt = make_be_packet(
          net.be_route(net.node_at(s), net.node_at(d)),
          {static_cast<std::uint32_t>(s), static_cast<std::uint32_t>(d)},
          tag++);
      net.na(net.node_at(s)).send_be_packet(std::move(pkt));
    }
  }
  ctx.sim().run();
  std::uint64_t delivered = 0;
  for (const auto& [t, f] : hub.flows_by_tag()) {
    delivered += f->packets;
    EXPECT_EQ(f->seq_errors, 0u);
  }
  EXPECT_EQ(delivered, static_cast<std::uint64_t>(n) * (n - 1));
}

// A concentrated-mesh scenario drives k BE flows per router (one per
// core); the spec layer threads the concentration through and the run
// stays violation-free.
TEST(ScaleDelivery, CMeshScenarioRunsKFlowsPerRouter) {
  exp::ScenarioSpec spec;
  spec.name = "cmesh-smoke";
  spec.topology = TopologyKind::kCMesh;
  spec.width = spec.height = 3;
  spec.concentration = 4;
  spec.pattern = BePattern::kUniform;
  spec.be_interarrival_ps = 16000;
  spec.gs_set = GsSetKind::kNone;
  spec.duration_ps = 400000;
  const exp::ScenarioResult r = exp::run_scenario(spec);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_GT(r.stats.be_packets_generated, 0u);
  EXPECT_GT(r.stats.be_packets_delivered, 0u);
  EXPECT_EQ(r.stats.guarantee_violations, 0u);
}

// Hierarchical compositions via GraphSpec: a ring of meshes and an
// express ring build, wire symmetrically, and deliver all-pairs BE
// traffic under up*/down* routing.
TEST(ScaleHierarchy, RingOfMeshesAndExpressRingDeliverAllPairs) {
  const std::vector<GraphSpec> graphs = {
      GraphSpec::ring_of_meshes(3, 3, 3),
      GraphSpec::express_ring(24, 4),
  };
  for (const GraphSpec& g : graphs) {
    sim::SimContext ctx;
    NetworkConfig cfg;
    cfg.topology = TopologySpec::irregular(g);
    cfg.router.be_vcs = 2;
    Network net(ctx, cfg);
    MeasurementHub hub;
    attach_hub(net, hub);
    const Topology& topo = net.topology();
    // Wire symmetry of the composed graph.
    for (const NodeId n : topo.nodes()) {
      for (PortIdx p = 0; p < kNumDirections; ++p) {
        const auto peer = topo.link_peer(n, p);
        if (!peer.has_value()) continue;
        const auto back = topo.link_peer(peer->node, peer->port);
        ASSERT_TRUE(back.has_value()) << topo.label();
        EXPECT_EQ(back->node, n) << topo.label();
      }
    }
    const std::size_t n = net.node_count();
    std::uint32_t tag = 1;
    for (std::size_t s = 0; s < n; ++s) {
      for (std::size_t d = 0; d < n; ++d) {
        if (s == d) continue;
        BePacket pkt = make_be_packet(
            net.be_route(net.node_at(s), net.node_at(d)),
            {static_cast<std::uint32_t>(s)}, tag++);
        net.na(net.node_at(s)).send_be_packet(std::move(pkt));
      }
    }
    ctx.sim().run();
    std::uint64_t delivered = 0;
    for (const auto& [t, f] : hub.flows_by_tag()) delivered += f->packets;
    EXPECT_EQ(delivered, static_cast<std::uint64_t>(n) * (n - 1))
        << topo.label();
  }
}

TEST(ScaleHierarchy, RingOfMeshesNodeCountAndDegreeBounds) {
  const GraphSpec g = GraphSpec::ring_of_meshes(4, 3, 2);
  const auto topo = make_topology(TopologySpec::irregular(g));
  EXPECT_EQ(topo->node_count(), 4u * 3u * 2u);
  for (const NodeId n : topo->nodes()) {
    EXPECT_LE(topo->degree(n), 4u) << topo->label();
    EXPECT_GE(topo->degree(n), 1u) << topo->label();
  }
}

}  // namespace
}  // namespace mango::noc
