// Tests for the network report utility.
#include <gtest/gtest.h>

#include "noc/network/connection_manager.hpp"
#include "noc/network/network.hpp"
#include "noc/network/report.hpp"
#include "noc/traffic/sink.hpp"
#include "noc/traffic/workload.hpp"
#include "sim/simulator.hpp"
#include "sim/context.hpp"

namespace mango::noc {
namespace {

using sim::operator""_ns;
using sim::operator""_us;

TEST(NetworkReportTest, IdleNetworkIsAllZero) {
  sim::SimContext ctx;
  sim::Simulator& sim = ctx.sim();
  MeshConfig mesh{2, 2, RouterConfig{}, 1};
  Network net(ctx, mesh);
  sim.run_until(1_us);
  const NetworkReport r = NetworkReport::collect(net, 1_us);
  ASSERT_EQ(r.routers.size(), 4u);
  ASSERT_EQ(r.links.size(), 4u);  // 2x2 mesh: 4 links
  for (const auto& router : r.routers) {
    EXPECT_EQ(router.switch_flits, 0u);
    EXPECT_EQ(router.arb_grants, 0u);
  }
  EXPECT_EQ(r.total_flits_on_links, 0u);
  EXPECT_EQ(r.peak_link_utilization, 0.0);
}

TEST(NetworkReportTest, SaturatedLinkShowsFullUtilization) {
  sim::SimContext ctx;
  sim::Simulator& sim = ctx.sim();
  MeshConfig mesh{2, 1, RouterConfig{}, 1};
  Network net(ctx, mesh);
  ConnectionManager mgr(net, NodeId{0, 0});
  MeasurementHub hub;
  attach_hub(net, hub);
  // Four saturating connections over the single link: aggregate reaches
  // the link issue rate = 50% of the bidirectional capacity.
  for (int i = 0; i < 4; ++i) {
    const Connection& c = mgr.open_direct({0, 0}, {1, 0});
    net.na({0, 0}).set_gs_supplier(c.src_iface, [&sim]() {
      Flit f;
      f.injected_at = sim.now();
      return std::optional<Flit>(f);
    });
  }
  sim.run_until(4_us);
  const NetworkReport r = NetworkReport::collect(net, 4_us);
  EXPECT_NEAR(r.peak_link_utilization, 0.5, 0.03);
  EXPECT_GT(r.total_flits_on_links, 1000u);
  // The sending router's arbiter granted all those flits.
  std::uint64_t grants = 0;
  for (const auto& router : r.routers) grants += router.arb_grants;
  EXPECT_GE(grants, r.total_flits_on_links);
}

TEST(NetworkReportTest, CountsBothTrafficClasses) {
  sim::SimContext ctx;
  sim::Simulator& sim = ctx.sim();
  MeshConfig mesh{2, 2, RouterConfig{}, 1};
  Network net(ctx, mesh);
  ConnectionManager mgr(net, NodeId{0, 0});
  MeasurementHub hub;
  attach_hub(net, hub);
  const Connection& c = mgr.open_direct({0, 0}, {1, 1});
  for (int i = 0; i < 20; ++i) net.na({0, 0}).gs_send(c.src_iface, Flit{});
  net.na({0, 0}).send_be_packet(
      make_be_packet(net.be_route({0, 0}, {1, 0}), {1u, 2u, 3u}));
  sim.run();
  const NetworkReport r = NetworkReport::collect(net, sim.now());
  std::uint64_t sw = 0, be = 0;
  for (const auto& router : r.routers) {
    sw += router.switch_flits;
    be += router.be_flits;
  }
  EXPECT_GT(sw, 0u);
  EXPECT_GT(be, 0u);
  EXPECT_THROW(NetworkReport::collect(net, 0), mango::ModelError);
}

TEST(NetworkReportTest, JsonCarriesIdentifiedLinksAndTotals) {
  sim::SimContext ctx;
  sim::Simulator& sim = ctx.sim();
  MeshConfig mesh{2, 1, RouterConfig{}, 1};
  Network net(ctx, mesh);
  ConnectionManager mgr(net, NodeId{0, 0});
  MeasurementHub hub;
  attach_hub(net, hub);
  auto src = saturate_connection(net, mgr, {0, 0}, {1, 0}, /*tag=*/1);
  sim.run_until(1_us);
  const NetworkReport r = NetworkReport::collect(net, 1_us);
  std::string out;
  JsonWriter w(&out);
  r.write_json(w);
  // Every router and the (identified) link appear, with nonzero totals.
  EXPECT_NE(out.find("\"node\": \"(0,0)\""), std::string::npos);
  EXPECT_NE(out.find("\"node\": \"(1,0)\""), std::string::npos);
  EXPECT_NE(out.find("\"port\": \"E\""), std::string::npos);
  EXPECT_NE(out.find("\"total_flits_on_links\""), std::string::npos);
  EXPECT_EQ(out.find("0,5"), std::string::npos);  // no comma decimals ever
  // Same report serialized twice is byte-identical.
  std::string out2;
  JsonWriter w2(&out2);
  r.write_json(w2);
  EXPECT_EQ(out, out2);
}

TEST(NetworkReportTest, JsonStampsSchemaVersion) {
  // Downstream tooling keys on this: v2 introduced the stamp itself and
  // the connection-lifecycle / churn fields. Bump kReportSchemaVersion
  // (and this test) whenever the document shape changes again.
  static_assert(kReportSchemaVersion == 2,
                "schema bumped: update the assertions below and the "
                "version history in report.hpp");
  sim::SimContext ctx;
  MeshConfig mesh{2, 1, RouterConfig{}, 1};
  Network net(ctx, mesh);
  ctx.run_until(1_us);
  const NetworkReport r = NetworkReport::collect(net, 1_us);
  std::string out;
  JsonWriter w(&out);
  r.write_json(w);
  ASSERT_NE(out.find("\"schema_version\": 2"), std::string::npos);
  // It is the first member, ahead of everything else.
  EXPECT_LT(out.find("\"schema_version\""), out.find("\"topology\""));
  // Without a broker attached there is no lifecycle block.
  EXPECT_EQ(out.find("\"connection_lifecycle\""), std::string::npos);
}

}  // namespace
}  // namespace mango::noc
