// Unit tests for the measurement primitives.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/assert.hpp"
#include "sim/stats.hpp"

namespace mango::sim {
namespace {

TEST(Accumulator, EmptyIsZero) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.variance(), 0.0);
  EXPECT_EQ(a.min(), 0.0);
  EXPECT_EQ(a.max(), 0.0);
}

TEST(Accumulator, MeanMinMaxSum) {
  Accumulator a;
  for (double x : {2.0, 4.0, 6.0, 8.0}) a.add(x);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 8.0);
  EXPECT_DOUBLE_EQ(a.sum(), 20.0);
}

TEST(Accumulator, SampleVariance) {
  Accumulator a;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(x);
  // Known dataset: sample variance = 32/7.
  EXPECT_NEAR(a.variance(), 32.0 / 7.0, 1e-9);
  EXPECT_NEAR(a.stddev(), std::sqrt(32.0 / 7.0), 1e-9);
}

TEST(Accumulator, SingleSampleHasZeroVariance) {
  Accumulator a;
  a.add(3.0);
  EXPECT_EQ(a.variance(), 0.0);
}

TEST(Accumulator, ResetClears) {
  Accumulator a;
  a.add(1.0);
  a.reset();
  EXPECT_EQ(a.count(), 0u);
}

TEST(Histogram, QuantilesOfKnownData) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.add(static_cast<double>(i));
  EXPECT_NEAR(h.p50(), 50.5, 1e-9);
  EXPECT_NEAR(h.quantile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(h.max(), 100.0, 1e-9);
  EXPECT_NEAR(h.p99(), 99.01, 0.05);
  EXPECT_NEAR(h.mean(), 50.5, 1e-9);
}

TEST(Histogram, EmptyQuantileIsZero) {
  Histogram h;
  EXPECT_EQ(h.p99(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(Histogram, OutOfRangeQuantileThrows) {
  Histogram h;
  h.add(1.0);
  EXPECT_THROW(h.quantile(1.5), mango::ModelError);
}

TEST(Histogram, UnsortedInsertionOrderDoesNotMatter) {
  Histogram h;
  for (double x : {9.0, 1.0, 5.0, 3.0, 7.0}) h.add(x);
  EXPECT_DOUBLE_EQ(h.p50(), 5.0);
  h.add(0.0);  // interleave adds with queries
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
}

TEST(ThroughputMeter, RatesOverWindows) {
  ThroughputMeter m;
  m.record(1000);   // 1 ns
  m.record(2000);
  m.record(3000);
  m.record(4000);   // 4 ns
  EXPECT_EQ(m.count(), 4u);
  // 4 units over a 4 ns window.
  EXPECT_DOUBLE_EQ(m.per_ns(0, 4000), 1.0);
  // Observed span: 3 intervals over 3 ns.
  EXPECT_DOUBLE_EQ(m.per_ns_observed(), 1.0);
}

TEST(ThroughputMeter, DegenerateWindows) {
  ThroughputMeter m;
  EXPECT_EQ(m.per_ns(0, 0), 0.0);
  m.record(100);
  EXPECT_EQ(m.per_ns_observed(), 0.0);  // single sample: no interval
}

TEST(TablePrinter, RowWidthMismatchThrows) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), mango::ModelError);
}

TEST(TablePrinter, FormatsDoubles) {
  EXPECT_EQ(TablePrinter::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::fmt(0.0005, 3), "0.001");
}

}  // namespace
}  // namespace mango::sim
