// Failure-injection tests: misprogrammed networks must be *detected* by
// the model's invariants, not silently corrupt traffic.
#include <gtest/gtest.h>

#include "noc/network/connection_manager.hpp"
#include "noc/network/network.hpp"
#include "sim/simulator.hpp"
#include "sim/context.hpp"

namespace mango::noc {
namespace {

struct FailureFixture : ::testing::Test {
  sim::SimContext ctx;
  sim::Simulator& sim = ctx.sim();
  MeshConfig mesh{2, 2, RouterConfig{}, 1};
  Network net{ctx, mesh};
};

TEST_F(FailureFixture, TwoConnectionsOnOneVcBufferCollide) {
  // Program two sources into the *same* VC buffer of router (1,0) —
  // bypassing the connection manager's allocator. The non-blocking
  // invariant (one connection per buffer) is violated and the
  // unsharebox collision fires under concurrent traffic.
  Router& r0 = net.router({0, 0});
  const VcBufferId shared{port_of(Direction::kEast), 0};
  const VcBufferId dst_buf{kLocalPort, 0};

  // Two NA sources at (0,0) both steered into `shared`.
  const SteerBits steer = r0.switching().encode_gs(kLocalPort, shared);
  net.na({0, 0}).configure_gs_source(0, steer);
  net.na({0, 0}).configure_gs_source(1, steer);
  r0.table().set_reverse(shared, ReverseEntry{kLocalPort, 0});
  r0.table().set_forward(
      shared, net.router({1, 0}).switching().encode_gs(
                  port_of(Direction::kWest), dst_buf));
  net.router({1, 0}).table().set_reverse(
      dst_buf, ReverseEntry{port_of(Direction::kWest), 0});

  // Both interfaces fire: the second flit reaches the occupied
  // unsharebox (its own sharebox is a *different* box, so nothing stops
  // it — exactly the failure the invariant exists for).
  net.na({0, 0}).gs_send(0, Flit{});
  net.na({0, 0}).gs_send(1, Flit{});
  EXPECT_THROW(sim.run(), mango::ModelError);
}

TEST_F(FailureFixture, MissingReverseEntryDetectedOnFirstFlit) {
  Router& r0 = net.router({0, 0});
  const VcBufferId buf{port_of(Direction::kEast), 0};
  net.na({0, 0}).configure_gs_source(
      0, r0.switching().encode_gs(kLocalPort, buf));
  // Forward path programmed, reverse path forgotten.
  r0.table().set_forward(buf, net.router({1, 0}).switching().encode_gs(
                                  port_of(Direction::kWest),
                                  VcBufferId{kLocalPort, 0}));
  net.na({0, 0}).gs_send(0, Flit{});
  EXPECT_THROW(sim.run(), mango::ModelError);
}

TEST_F(FailureFixture, ReverseSignalForUnconfiguredNaSourceDetected) {
  Router& r0 = net.router({0, 0});
  const VcBufferId buf{port_of(Direction::kEast), 3};
  // Reverse entry points at NA interface 2, which is not configured.
  r0.table().set_reverse(buf, ReverseEntry{kLocalPort, 2});
  net.na({0, 0}).configure_gs_source(
      0, r0.switching().encode_gs(kLocalPort, buf));
  r0.table().set_forward(buf, net.router({1, 0}).switching().encode_gs(
                                  port_of(Direction::kWest),
                                  VcBufferId{kLocalPort, 0}));
  net.router({1, 0}).table().set_reverse(
      VcBufferId{kLocalPort, 0}, ReverseEntry{port_of(Direction::kWest), 3});
  net.na({0, 0}).gs_send(0, Flit{});
  EXPECT_THROW(sim.run(), mango::ModelError);
}

TEST_F(FailureFixture, MalformedProgrammingPacketDetectedAtTheRouter) {
  // A corrupted programming word (bad opcode) delivered through the
  // network raises at the programming interface.
  BePacket pkt = make_be_packet(
      net.be_route({0, 0}, {1, 1}, LocalIface::kProgramming),
      {0xF0000000u});
  net.na({0, 0}).send_be_packet(std::move(pkt));
  EXPECT_THROW(sim.run(), mango::ModelError);
}

TEST_F(FailureFixture, ProgrammingPacketForLiveConnectionDetected) {
  ConnectionManager mgr(net, NodeId{0, 0});
  mgr.open_direct({0, 0}, {1, 1});
  // A rogue packet reprograms a buffer that is already part of a live
  // connection: detected as a double-program.
  const Connection* conn = mgr.get(1);
  ASSERT_NE(conn, nullptr);
  const auto [node, buffer] = conn->hops[0];
  BePacket pkt = make_be_packet(
      net.be_route({1, 1}, node, LocalIface::kProgramming),
      {encode_prog_reverse(buffer, ReverseEntry{kLocalPort, 0})});
  net.na({1, 1}).send_be_packet(std::move(pkt));
  EXPECT_THROW(sim.run(), mango::ModelError);
}

TEST_F(FailureFixture, SteeringIntoNonexistentVcDetected) {
  // Hand-crafted steering bits select a local interface beyond the
  // configured count (2 in this shrunken config).
  sim::Simulator sim2;
  RouterConfig small;
  small.local_gs_ifaces = 2;
  const StageDelays delays = stage_delays(TimingCorner::kWorstCase);
  SwitchingModule sw(sim2, small, delays);
  sw.set_gs_sink([](VcBufferId, Flit&&) {});
  const SteerBits valid = sw.encode_gs(port_of(Direction::kWest),
                                       VcBufferId{kLocalPort, 1});
  Flit f;
  EXPECT_THROW(sw.route(port_of(Direction::kWest),
                        LinkFlit{SteerBits{valid.split, 3}, f}),
               mango::ModelError);
}

}  // namespace
}  // namespace mango::noc
