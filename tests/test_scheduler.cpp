// Calendar-queue scheduler coverage: ordering semantics the NoC model
// depends on, wheel/overflow mechanics, and a randomized differential
// check against the reference priority-queue kernel.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/callback.hpp"
#include "sim/legacy_kernel.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace mango::sim {
namespace {

// One wheel bucket is 512 ps and the wheel spans 4096 buckets, so events
// past ~2.1 us of the cursor take the overflow path. Derived here rather
// than exported: the values are an implementation detail, the tests only
// need "definitely beyond the horizon".
constexpr Time kBeyondHorizon = 8 * 1000 * 1000;  // 8 us

TEST(Scheduler, SameTimestampDispatchesInInsertionOrderAcrossBuckets) {
  Simulator sim;
  std::vector<int> order;
  // Interleave three timestamps so insertions hit the same bucket list
  // non-monotonically: 700 and 900 share bucket 1, 100 sits in bucket 0.
  sim.at(900, [&] { order.push_back(3); });
  sim.at(100, [&] { order.push_back(1); });
  sim.at(700, [&] { order.push_back(2); });
  sim.at(900, [&] { order.push_back(4); });  // same time, later insertion
  sim.at(700, [&] { order.push_back(5); });  // sorted insert mid-bucket
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 5, 3, 4}));
}

TEST(Scheduler, OverflowEventsDispatchAfterWheelEvents) {
  Simulator sim;
  std::vector<int> order;
  sim.at(kBeyondHorizon, [&] { order.push_back(2); });  // overflow path
  sim.at(500, [&] { order.push_back(1); });             // wheel path
  sim.at(2 * kBeyondHorizon, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 2 * kBeyondHorizon);
}

TEST(Scheduler, OverflowTieBreaksBySeqAfterMigration) {
  Simulator sim;
  std::vector<int> order;
  // All beyond the horizon at the same timestamp: the overflow heap must
  // preserve insertion order when they migrate into one bucket.
  for (int i = 0; i < 8; ++i) {
    sim.at(kBeyondHorizon, [&order, i] { order.push_back(i); });
  }
  // Advance the clock to just below the ties and anchor a wheel event so
  // the ties actually take the migration path (with an empty wheel the
  // kernel pops the overflow heap directly, which would not cover it).
  sim.run_until(kBeyondHorizon - 1000);
  sim.after(50, [&order] { order.push_back(-1); });
  sim.run();
  ASSERT_EQ(order.size(), 9u);
  EXPECT_EQ(order[0], -1);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<size_t>(i) + 1], i);
}

TEST(Scheduler, AdmittedOverflowTiesDispatchByBirthThenSeq) {
  // admit() carries an explicit birth; beyond the horizon the events land
  // in the overflow heap, which must order by the full (time, birth, seq)
  // key — not raw insertion order. Births are deliberately inserted
  // out of order, with one same-birth pair left to the seq tie-break.
  Simulator sim;
  std::vector<int> order;
  sim.admit(kBeyondHorizon, 700, [&] { order.push_back(3); });
  sim.admit(kBeyondHorizon, 100, [&] { order.push_back(1); });
  sim.admit(kBeyondHorizon, 700, [&] { order.push_back(4); });  // seq tie
  sim.admit(kBeyondHorizon, 300, [&] { order.push_back(2); });
  // An earlier timestamp beats every later-time event regardless of its
  // birth being the largest of the batch.
  sim.admit(kBeyondHorizon - 512, 900, [&] { order.push_back(0); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));

  // Same shape through the migration path: advance the clock so the
  // granule enters the wheel window and the ties migrate into one bucket
  // (with an empty wheel the kernel pops the heap directly; the anchor
  // event forces the migration).
  Simulator sim2;
  order.clear();
  sim2.admit(kBeyondHorizon, 500, [&] { order.push_back(2); });
  sim2.admit(kBeyondHorizon, 200, [&] { order.push_back(1); });
  sim2.run_until(kBeyondHorizon - 1000);
  sim2.after(50, [&] { order.push_back(0); });
  sim2.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Scheduler, OverflowEventEarlierThanLaterWheelInsertStillWins) {
  // Regression shape: an overflow event whose granule enters the wheel
  // window only after the cursor advances must still dispatch before a
  // *later* event that was inserted directly into the wheel.
  Simulator sim;
  std::vector<int> order;
  sim.at(10, [&] {
    // From t=10 the horizon ends around ~2.1 us, so 5 us is overflow.
    sim.at(5 * 1000 * 1000, [&] { order.push_back(2); });
    // Walk the cursor forward with a chain of near events until the
    // 5 us granule is inside the window, then insert a later wheel event.
    sim.at(4 * 1000 * 1000, [&] {
      sim.at(5 * 1000 * 1000 + 100, [&] { order.push_back(3); });
      order.push_back(1);
    });
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, RunUntilBoundaryWithOverflowEvents) {
  Simulator sim;
  int fired = 0;
  sim.at(100, [&] { ++fired; });
  sim.at(kBeyondHorizon, [&] { ++fired; });
  sim.at(kBeyondHorizon + 1, [&] { ++fired; });
  // Stop between the wheel event and the overflow events.
  EXPECT_EQ(sim.run_until(kBeyondHorizon - 1), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), kBeyondHorizon - 1);
  // Boundary inclusive: exactly at the overflow event's time.
  EXPECT_EQ(sim.run_until(kBeyondHorizon), 1u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(fired, 3);
}

TEST(Scheduler, SchedulingAfterIdleRunUntilReanchorsTheWheel) {
  Simulator sim;
  int fired = 0;
  sim.at(100, [&] { ++fired; });
  sim.run();
  // Advance the clock far past the (stale) wheel cursor, then schedule
  // near events again: they must land and dispatch normally.
  sim.run_until(100 * kBeyondHorizon);
  EXPECT_EQ(sim.now(), 100 * kBeyondHorizon);
  sim.after(500, [&] { ++fired; });
  sim.after(200, [&] { ++fired; });
  EXPECT_EQ(sim.run(), 2u);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.now(), 100 * kBeyondHorizon + 500);
}

TEST(Scheduler, WheelRolloverManyRotations) {
  // A periodic event crosses the wheel seam (granule wrap) thousands of
  // times; each dispatch must see monotonically advancing time.
  Simulator sim;
  std::uint64_t count = 0;
  Time last = 0;
  bool monotonic = true;
  constexpr std::uint64_t kTicks = 20000;
  // 1300 ps period: co-prime-ish with the 512 ps bucket so the event
  // lands at varying bucket offsets.
  struct Tick {
    Simulator* sim;
    std::uint64_t* count;
    Time* last;
    bool* monotonic;
    void operator()() const {
      if (sim->now() < *last) *monotonic = false;
      *last = sim->now();
      if (++*count < kTicks) sim->after(1300, *this);
    }
  };
  sim.after(1300, Tick{&sim, &count, &last, &monotonic});
  sim.run();
  EXPECT_EQ(count, kTicks);
  EXPECT_TRUE(monotonic);
  EXPECT_EQ(sim.now(), 1300 * kTicks);
}

TEST(Scheduler, InsertBelowFastForwardedCursorStillDispatchesInOrder) {
  // run_until declines an event after next_event_time() fast-forwarded
  // the wheel cursor to its bucket; a subsequent insert below the cursor
  // must rewind it (insert() guard) and dispatch everything in order.
  Simulator sim;
  std::vector<int> order;
  sim.at(100, [&] { order.push_back(1); });
  sim.at(1 * 1000 * 1000, [&] { order.push_back(3); });  // same wheel window
  EXPECT_EQ(sim.run_until(500), 1u);  // dispatches t=100, peeks at t=1e6
  sim.at(600, [&] { order.push_back(2); });  // granule below the cursor
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 1 * 1000 * 1000u);
}

TEST(Scheduler, FarInsertUnderFastForwardedCursorDoesNotLapEarly) {
  // Regression: run_until() declines the first event after
  // next_event_time() fast-forwarded the cursor well past granule(now).
  // An insert that is beyond now()'s wheel horizon but *within the
  // cursor's* must not be admitted to the wheel: a subsequent near insert
  // rewinds the cursor to granule(now), and the far event — aliased into
  // a bucket between the rewound cursor and the declined event — would
  // dispatch one full wheel lap early (and drag now() backwards after it).
  Simulator sim;
  std::vector<int> order;
  // Granules (512 ps buckets): 51200 -> 100, 2107392 -> 4116, 5120 -> 10.
  // From now()=10 the horizon ends at granule 4096; from the cursor
  // (fast-forwarded to 100) it would end at 4196, wrongly admitting 4116.
  sim.at(51200, [&] { order.push_back(2); });
  EXPECT_EQ(sim.run_until(10), 0u);  // peek fast-forwards cursor to 100
  sim.at(2107392, [&] { order.push_back(3); });  // beyond now()+horizon
  sim.at(5120, [&] { order.push_back(1); });     // below cursor: rewinds
  std::vector<Time> times;
  while (sim.step()) times.push_back(sim.now());
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(times, (std::vector<Time>{5120, 51200, 2107392}));
}

TEST(Scheduler, OverflowMigrationAfterCursorFastForward) {
  // An overflow event older than every wheel event, with a
  // next_event_time() call interposed so the cursor has fast-forwarded
  // past the overflow granule before the migration happens (pop_earliest
  // rewind guard).
  Simulator sim;
  std::vector<int> order;
  sim.at(10, [&] {
    sim.at(5 * 1000 * 1000, [&] { order.push_back(2); });  // overflow
    sim.at(4 * 1000 * 1000, [&] {
      sim.at(5 * 1000 * 1000 + 100, [&] { order.push_back(3); });  // wheel
      order.push_back(1);
    });
  });
  // Drain up to just past t=4e6, peeking (and fast-forwarding) each step.
  while (sim.next_event_time() <= 4 * 1000 * 1000) sim.step();
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, NextEventTimeSeesBothWheelAndOverflow) {
  Simulator sim;
  EXPECT_EQ(sim.next_event_time(), kTimeNever);
  sim.at(kBeyondHorizon, [] {});
  EXPECT_EQ(sim.next_event_time(), kBeyondHorizon);
  sim.at(300, [] {});
  EXPECT_EQ(sim.next_event_time(), 300u);
  sim.step();
  EXPECT_EQ(sim.next_event_time(), kBeyondHorizon);
}

TEST(Scheduler, LargeCaptureSpillsToHeapAndStillRuns) {
  Simulator sim;
  struct Big {
    std::uint64_t words[32] = {};
  };
  static_assert(!Simulator::Callback::stores_inline<Big>());
  Big big;
  big.words[31] = 42;
  std::uint64_t seen = 0;
  sim.at(10, [big, &seen] { seen = big.words[31]; });
  sim.run();
  EXPECT_EQ(seen, 42u);
}

TEST(InlineFunctionTest, InlineCapturesDoNotAllocate) {
  struct Small {
    void* a;
    void* b;
    void* c;
    void operator()() const {}
  };
  static_assert(InlineCallback::stores_inline<Small>());
  static_assert(Simulator::Callback::stores_inline<Small>());
}

TEST(InlineFunctionTest, MoveTransfersTargetAndEmptiesSource) {
  int hits = 0;
  InlineCallback a = [&hits] { ++hits; };
  InlineCallback b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);
}

TEST(InlineFunctionTest, MoveOnlyCapturesWork) {
  auto p = std::make_unique<int>(7);
  InlineFunction<int()> f = [p = std::move(p)] { return *p; };
  EXPECT_EQ(f(), 7);
}

/// Randomized differential test: the calendar-queue kernel and the
/// reference priority-queue kernel must produce bit-identical dispatch
/// sequences — (time, event id) — for identical workloads mixing
/// handshake-scale delays, far timeouts and same-time ties.
template <typename Kernel>
std::vector<std::pair<Time, std::uint64_t>> run_storm(std::uint64_t seed) {
  Kernel sim;
  Rng rng(seed);
  std::vector<std::pair<Time, std::uint64_t>> trace;
  std::uint64_t next_id = 0;
  std::uint64_t budget = 20000;

  struct Ctl {
    Kernel* sim;
    Rng* rng;
    std::vector<std::pair<Time, std::uint64_t>>* trace;
    std::uint64_t* next_id;
    std::uint64_t* budget;
  } ctl{&sim, &rng, &trace, &next_id, &budget};

  struct Node {
    Ctl* c;
    std::uint64_t id;
    void operator()() const {
      c->trace->emplace_back(c->sim->now(), id);
      if (*c->budget == 0) return;
      // 0-2 follow-ups with mixed horizons, sometimes zero delay.
      const std::uint64_t kids = c->rng->next_below(3);
      for (std::uint64_t k = 0; k < kids && *c->budget > 0; ++k) {
        --*c->budget;
        const std::uint64_t kind = c->rng->next_below(10);
        Time d = 0;
        if (kind == 0) {
          d = 0;  // same-timestamp tie
        } else if (kind == 1) {
          d = 3 * 1000 * 1000 + c->rng->next_below(20 * 1000 * 1000);
        } else {
          d = 60 + c->rng->next_below(2500);
        }
        c->sim->after(d, Node{c, (*c->next_id)++});
      }
    }
  };

  for (int i = 0; i < 32; ++i) {
    sim.after(rng.next_below(1000), Node{&ctl, next_id++});
  }
  // Drive through randomized run_until() boundaries instead of one run(),
  // peeking next_event_time() (which fast-forwards the calendar cursor)
  // and scheduling fresh events from *outside* any callback between
  // segments — the cursor fast-forward/rewind state space that pure
  // run()-driven storms never enter. The wheel horizon is ~2.1 us, so the
  // delay mix below straddles it from both sides.
  while (!sim.idle()) {
    sim.run_until(sim.now() + 1 + rng.next_below(6 * 1000 * 1000));
    (void)sim.next_event_time();
    const std::uint64_t extra = rng.next_below(3);
    for (std::uint64_t k = 0; k < extra && budget > 0; ++k) {
      --budget;
      const std::uint64_t kind = rng.next_below(4);
      Time d = 0;
      if (kind == 0) {
        d = rng.next_below(2500);  // near: below the cursor when rewound
      } else if (kind == 1) {
        // Horizon edge: beyond now()+horizon yet possibly within the
        // fast-forwarded cursor's window (the lap-early aliasing shape).
        d = 2 * 1000 * 1000 + rng.next_below(400 * 1000);
      } else {
        d = 3 * 1000 * 1000 + rng.next_below(20 * 1000 * 1000);  // far
      }
      sim.after(d, Node{&ctl, next_id++});
    }
  }
  return trace;
}

TEST(SchedulerDifferential, BitIdenticalDispatchVsLegacyKernel) {
  for (std::uint64_t seed : {1ull, 42ull, 0xDEADBEEFull}) {
    const auto a = run_storm<Simulator>(seed);
    const auto b = run_storm<LegacySimulator>(seed);
    ASSERT_EQ(a.size(), b.size()) << "seed " << seed;
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i], b[i]) << "divergence at event " << i << ", seed "
                            << seed;
    }
  }
}

}  // namespace
}  // namespace mango::sim
