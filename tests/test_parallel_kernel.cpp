// Sharded conservative kernel: the (time, birth, seq) merge order, the
// window/lookahead contract, SPSC boundary handoff, the topology
// partition, the sweep core budget — and the invariant everything above
// exists to uphold: a scenario's stats are bit-identical for every
// --shards value, on all four fabrics, with and without connection
// churn.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "exp/scenario.hpp"
#include "exp/sweep.hpp"
#include "noc/network/network.hpp"
#include "sim/assert.hpp"
#include "sim/context.hpp"
#include "sim/parallel.hpp"
#include "sim/simulator.hpp"
#include "sim/spsc.hpp"

namespace mango {
namespace {

// --- kernel ordering ---------------------------------------------------

// Dispatch order is (time, birth, seq): an event admitted from another
// shard with an earlier birth overtakes a same-time local event even
// though it was inserted later.
TEST(ParallelKernel, AdmittedEventSortsByBirthAgainstLocals) {
  sim::Simulator s;
  std::vector<int> order;
  // Local event scheduled at t=50 for t=100: birth 50.
  s.at(50, [&] { s.at(100, [&] { order.push_back(1); }); });
  EXPECT_EQ(s.run_until(60), 1u);
  // Boundary event for the same instant, born at 10 on the sender.
  s.admit(100, 10, [&] { order.push_back(2); });
  // And one born later than the local event.
  s.admit(100, 70, [&] { order.push_back(3); });
  s.run_until(100);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 2);
  EXPECT_EQ(order[1], 1);
  EXPECT_EQ(order[2], 3);
}

// Equal (time, birth) falls back to insertion order — the organic case,
// identical to the classic (time, seq) kernel.
TEST(ParallelKernel, EqualBirthPreservesInsertionOrder) {
  sim::Simulator s;
  std::vector<int> order;
  s.at(100, [&] { order.push_back(1); });
  s.at(100, [&] { order.push_back(2); });
  s.admit(100, 0, [&] { order.push_back(3); });
  s.run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
  EXPECT_EQ(order[2], 3);
}

// --- window contract ---------------------------------------------------

// run_window(end) is half-open: events strictly before `end` dispatch,
// events exactly at `end` stay pending, and the clock parks at `end` so
// the barrier can admit boundary events *at* the edge.
TEST(ParallelKernel, RunWindowIsHalfOpen) {
  sim::Simulator s;
  int before = 0, edge = 0;
  s.at(99, [&] { ++before; });
  s.at(100, [&] { ++edge; });
  EXPECT_EQ(s.run_window(100), 1u);
  EXPECT_EQ(before, 1);
  EXPECT_EQ(edge, 0);
  EXPECT_EQ(s.now(), 100u);
  EXPECT_EQ(s.pending(), 1u);
}

// The satellite case the half-open window exists for: a boundary flit
// whose arrival lands exactly on a window edge is admitted at the
// barrier and still merges *ahead* of the edge-time local event when
// its sender-side birth is earlier.
TEST(ParallelKernel, BoundaryFlitExactlyOnWindowEdgeMergesByBirth) {
  sim::Simulator s;
  std::vector<int> order;
  s.at(40, [&] { s.at(100, [&] { order.push_back(1); }); });  // birth 40
  s.run_window(100);  // park at the edge; the t=100 event is pending
  s.admit(100, 20, [&] { order.push_back(2); });  // born earlier remotely
  s.run_window(200);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 2);
  EXPECT_EQ(order[1], 1);
}

// run_until_tie aligns a shard on an exact (time, birth) key: events
// strictly before the key dispatch, the event *at* the key does not.
TEST(ParallelKernel, RunUntilTieStopsAtTheExactKey) {
  sim::Simulator s;
  std::vector<int> order;
  s.admit(100, 10, [&] { order.push_back(1); });
  s.admit(100, 50, [&] { order.push_back(2); });
  EXPECT_EQ(s.run_until_tie(100, 50), 1u);
  ASSERT_EQ(order.size(), 1u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(s.now(), 100u);
  s.run();
  EXPECT_EQ(order.size(), 2u);
}

// --- lookahead ---------------------------------------------------------

TEST(ParallelKernel, ZeroLookaheadIsACheckedError) {
  EXPECT_THROW(sim::conservative_lookahead({}), ModelError);
  EXPECT_THROW(sim::conservative_lookahead({500, 0, 800}), ModelError);
  EXPECT_EQ(sim::conservative_lookahead({500, 400, 800}), 400u);
}

// --- SPSC boundary queue ----------------------------------------------

TEST(ParallelKernel, SpscQueuePreservesPushOrderThroughSpill) {
  sim::SpscQueue<int> q(8);  // tiny ring: force the spill path
  for (int i = 0; i < 50; ++i) q.push(i);
  EXPECT_GT(q.spilled_high_water(), 0u);
  std::vector<int> got;
  q.drain([&](int v) { got.push_back(v); });
  ASSERT_EQ(got.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(got[i], i);
  // Drained queues start clean: the ring path is used again.
  q.push(99);
  int v = 0;
  ASSERT_TRUE(q.try_pop(v));
  EXPECT_EQ(v, 99);
}

// The batched handoff: records accumulate locally, publish() exposes
// them in one watermark store, consume() takes them in FIFO order and
// resets the channel for the next window.
TEST(ParallelKernel, SpscBatchPublishesOncePerWindowInFifoOrder) {
  sim::SpscBatch<int> b;
  for (int i = 0; i < 20; ++i) b.push(i);
  b.publish();
  std::vector<int> got;
  b.consume([&](int v) { got.push_back(v); });
  ASSERT_EQ(got.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(got[i], i);
  // A window that left the channel untouched publishes nothing and
  // drains nothing.
  b.publish();
  b.consume([&](int) { FAIL() << "clean batch produced a record"; });
  // The channel is reusable after a drain.
  b.push(42);
  b.publish();
  got.clear();
  b.consume([&](int v) { got.push_back(v); });
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], 42);
  EXPECT_EQ(b.high_water(), 20u);
}

// --- topology partition ------------------------------------------------

TEST(ParallelKernel, PartitionIsContiguousBalancedAndAnchored) {
  const auto part = noc::partition_shards(10, 4);
  ASSERT_EQ(part.size(), 10u);
  EXPECT_EQ(part[0], 0u);  // node 0 (the control host) lives in shard 0
  // Contiguous and nondecreasing.
  for (std::size_t i = 1; i < part.size(); ++i) {
    EXPECT_GE(part[i], part[i - 1]);
    EXPECT_LE(part[i] - part[i - 1], 1u);
  }
  // Balanced: 10 nodes over 4 shards = sizes {3, 3, 2, 2}.
  std::vector<unsigned> sizes(4, 0);
  for (const unsigned s : part) ++sizes.at(s);
  EXPECT_EQ(sizes[0], 3u);
  EXPECT_EQ(sizes[1], 3u);
  EXPECT_EQ(sizes[2], 2u);
  EXPECT_EQ(sizes[3], 2u);
  // Shard count clamps to the node count.
  const auto tiny = noc::partition_shards(2, 8);
  EXPECT_EQ(tiny[0], 0u);
  EXPECT_EQ(tiny[1], 1u);
}

// The weighted overload keeps every structural invariant of the uniform
// one (contiguous nondecreasing stripes, node 0 in shard 0, no empty
// shard, clamp to the node count) while placing the cuts by load.
TEST(ParallelKernel, WeightedPartitionBalancesLoadNotNodeCount) {
  // A front-loaded vector: one heavy node, seven light ones. A uniform
  // split would put weight 13 vs 4; the weighted cut isolates the hub.
  const std::vector<std::uint64_t> hub{10, 1, 1, 1, 1, 1, 1, 1};
  const auto part = noc::partition_shards(hub, 2);
  ASSERT_EQ(part.size(), 8u);
  EXPECT_EQ(part[0], 0u);
  for (std::size_t i = 1; i < part.size(); ++i) {
    EXPECT_GE(part[i], part[i - 1]);
    EXPECT_LE(part[i] - part[i - 1], 1u);
  }
  EXPECT_EQ(part[1], 1u);  // the cut lands right after the hub

  // Every shard is non-empty even when the weights say otherwise.
  const std::vector<std::uint64_t> lopsided{100, 1, 1, 1};
  const auto four = noc::partition_shards(lopsided, 4);
  std::vector<unsigned> sizes(4, 0);
  for (const unsigned s : four) ++sizes.at(s);
  for (const unsigned n : sizes) EXPECT_EQ(n, 1u);

  // Trailing zero-weight nodes still get owners (the last stripe runs
  // to the end), and an all-zero vector falls back to the uniform
  // split.
  const auto tail = noc::partition_shards({5, 0, 0, 0}, 2);
  EXPECT_EQ(tail, (std::vector<unsigned>{0, 1, 1, 1}));
  const auto zeros = noc::partition_shards({0, 0, 0, 0}, 2);
  EXPECT_EQ(zeros, (std::vector<unsigned>{0, 0, 1, 1}));

  // Clamp: more shards than nodes degenerates exactly like the uniform
  // overload.
  const auto tiny = noc::partition_shards({3, 7}, 8);
  EXPECT_EQ(tiny, (std::vector<unsigned>{0, 1}));
}

// partition_weights is a pure function of the topology: wired degree
// plus endpoints per router. On a mesh the interior outweighs the rim;
// concentration lifts every router of a cmesh by its core count.
TEST(ParallelKernel, PartitionWeightsFollowDegreeAndConcentration) {
  const auto mesh = noc::make_topology(noc::TopologySpec::mesh(4, 4));
  const auto w = noc::partition_weights(*mesh);
  ASSERT_EQ(w.size(), 16u);
  EXPECT_EQ(w[0], 3u);   // corner: degree 2 + concentration 1
  EXPECT_EQ(w[1], 4u);   // edge: degree 3 + 1
  EXPECT_EQ(w[5], 5u);   // interior: degree 4 + 1
  const auto cm = noc::make_topology(noc::TopologySpec::cmesh(4, 4, 4));
  const auto cw = noc::partition_weights(*cm);
  ASSERT_EQ(cw.size(), 16u);
  EXPECT_EQ(cw[0], 6u);  // corner: degree 2 + 4 cores
  EXPECT_EQ(cw[5], 8u);  // interior: degree 4 + 4 cores
  // The built-in irregular graph has heterogeneous degrees — the whole
  // point of weighting — so its weights must not be flat.
  const auto g = noc::make_topology(
      noc::TopologySpec::irregular(noc::GraphSpec::irregular(16)));
  const auto gw = noc::partition_weights(*g);
  EXPECT_NE(*std::min_element(gw.begin(), gw.end()),
            *std::max_element(gw.begin(), gw.end()));
}

// --- sweep core budget -------------------------------------------------

TEST(ParallelKernel, EffectiveShardsBudgetsCoresDeterministically) {
  EXPECT_EQ(exp::effective_shards(1, 4, 8), 4u);   // fits: untouched
  EXPECT_EQ(exp::effective_shards(2, 4, 8), 4u);   // exactly fits
  EXPECT_EQ(exp::effective_shards(4, 4, 8), 2u);   // clamp to hw / jobs
  EXPECT_EQ(exp::effective_shards(8, 4, 8), 1u);
  EXPECT_EQ(exp::effective_shards(16, 4, 8), 1u);  // never below 1
  EXPECT_EQ(exp::effective_shards(1, 1, 1), 1u);
  EXPECT_EQ(exp::effective_shards(0, 0, 0), 1u);   // degenerate inputs
}

// --- sharded network plumbing -----------------------------------------

TEST(ParallelKernel, ShardedNetworkPartitionsAndRunsWindows) {
  sim::SimContext ctx;
  noc::NetworkConfig cfg;
  cfg.topology = noc::TopologySpec::mesh(4, 4);
  cfg.shards = 2;
  noc::Network net(ctx, cfg);
  EXPECT_EQ(net.shard_count(), 2u);
  EXPECT_EQ(net.shard_of(0), 0u);
  EXPECT_EQ(net.shard_of(15), 1u);
  EXPECT_GT(net.min_link_latency(), 0u);
  EXPECT_EQ(net.control().deferral(), net.min_link_latency());
  EXPECT_TRUE(net.control().engine_mode());
  net.run_until(100000);
  // An idle fabric is ALL quiet windows: elision jumps the cursor
  // straight to the horizon instead of grinding them one by one.
  EXPECT_EQ(net.windows_run(), 0u);
  EXPECT_GT(net.windows_elided(), 0u);

  // With elision off the engine grinds every window; the grid is
  // anchored identically, so run + elided windows match exactly.
  sim::SimContext ctx2;
  noc::NetworkConfig cfg2 = cfg;
  cfg2.elide_windows = false;
  noc::Network grind(ctx2, cfg2);
  grind.run_until(100000);
  EXPECT_EQ(grind.windows_elided(), 0u);
  EXPECT_EQ(grind.windows_run(),
            net.windows_run() + net.windows_elided());
}

TEST(ParallelKernel, SingleShardNetworkKeepsTheKernelPath) {
  sim::SimContext ctx;
  noc::NetworkConfig cfg;
  cfg.topology = noc::TopologySpec::mesh(2, 2);
  cfg.shards = 1;
  noc::Network net(ctx, cfg);
  EXPECT_EQ(net.shard_count(), 1u);
  EXPECT_FALSE(net.control().engine_mode());
  EXPECT_EQ(net.windows_run(), 0u);
}

// --- whole-scenario bit-equality --------------------------------------

exp::ScenarioSpec fabric_spec(noc::TopologyKind kind, std::uint64_t seed) {
  exp::ScenarioSpec spec;
  spec.topology = kind;
  spec.width = spec.height = 4;
  spec.router.be_vcs = 2;  // dateline classes for the wrap fabrics
  spec.pattern = noc::BePattern::kUniform;
  spec.be_interarrival_ps = 10000;
  spec.gs_set = noc::GsSetKind::kRing;
  spec.gs_period_ps = 8000;
  spec.duration_ps = 500000;
  spec.seed = seed;
  spec.name = std::string("shards-") + noc::to_string(kind);
  return spec;
}

// The tentpole invariant: every stat of a scenario — BE and GS latency
// quantiles, jitter, event totals, link counters — is bit-identical for
// --shards 1, 2 and 4, on every fabric kind, across seeds. Cross-shard
// events merge in (time, birth, channel, FIFO) order, never wall-clock
// order, so the partition must be unobservable in the numbers.
TEST(ParallelScenario, Shards124AreBitIdenticalOnAllFabrics) {
  for (const noc::TopologyKind kind : noc::all_topology_kinds()) {
    for (const std::uint64_t seed : {1ull, 2ull}) {
      exp::ScenarioSpec spec = fabric_spec(kind, seed);
      const exp::ScenarioResult one = run_scenario(spec);
      ASSERT_TRUE(one.ok()) << spec.name << ": " << one.error;
      EXPECT_GT(one.stats.be_packets_delivered, 0u) << spec.name;
      EXPECT_GT(one.stats.gs_flits_delivered, 0u) << spec.name;
      for (const unsigned shards : {2u, 4u}) {
        spec.shards = shards;
        const exp::ScenarioResult n = run_scenario(spec);
        ASSERT_TRUE(n.ok())
            << spec.name << " shards=" << shards << ": " << n.error;
        EXPECT_EQ(n.stats, one.stats)
            << spec.name << " seed=" << seed << " shards=" << shards;
      }
    }
  }
}

// The engine's execution knobs — quiet-window elision, spin vs condvar
// barrier, batched vs per-record handoff — are wall-clock strategies
// only. Every combination must reproduce the single-kernel stats bit
// for bit on every fabric kind, at 2 and 4 shards.
struct EngineMode {
  const char* tag;
  bool elide;
  bool batched;
  std::uint32_t spin_us;
  bool force_spin;
};

const EngineMode kEngineModes[] = {
    {"elide-off", false, true, sim::kDefaultBarrierSpinUs, false},
    {"per-record", true, false, sim::kDefaultBarrierSpinUs, false},
    {"condvar", true, true, 0, false},
    // Tiny forced spin budget: exercises the atomic fast path even on
    // machines with fewer cores than shards (where it would normally
    // auto-disable), without burning real time when it misses.
    {"spin", true, true, 1, true},
};

TEST(ParallelScenario, EngineModesAreBitIdenticalOnAllFabrics) {
  for (const noc::TopologyKind kind : noc::all_topology_kinds()) {
    exp::ScenarioSpec spec = fabric_spec(kind, 1);
    const exp::ScenarioResult one = run_scenario(spec);
    ASSERT_TRUE(one.ok()) << spec.name << ": " << one.error;
    for (const unsigned shards : {2u, 4u}) {
      // kEngineModes[0] is elide-off: its windows_run is the full grid,
      // the reference for the conservation check below.
      std::uint64_t full_windows = 0;
      for (const EngineMode& m : kEngineModes) {
        spec.shards = shards;
        spec.elide_windows = m.elide;
        spec.batched_handoff = m.batched;
        spec.spin_us = m.spin_us;
        spec.force_spin = m.force_spin;
        const exp::ScenarioResult n = run_scenario(spec);
        ASSERT_TRUE(n.ok()) << spec.name << " shards=" << shards << " "
                            << m.tag << ": " << n.error;
        EXPECT_EQ(n.stats, one.stats)
            << spec.name << " shards=" << shards << " mode=" << m.tag;
        if (m.elide) {
          // Conservation: elision only skips windows, it never reshapes
          // the grid — run + elided must equal the unelided window count.
          // (A busy 4x4 fabric may legitimately elide zero windows.)
          EXPECT_EQ(n.windows_run + n.windows_elided, full_windows)
              << spec.name << " shards=" << shards << " mode=" << m.tag;
        } else {
          EXPECT_EQ(n.windows_elided, 0u);
          full_windows = n.windows_run;
          EXPECT_GT(full_windows, 0u) << spec.name << " shards=" << shards;
        }
      }
    }
  }
}

// Same matrix on a thousand-node rung: mesh-32x32 with table-routed BE
// headers, short horizon. Guards the elision/batching protocol where
// the boundary channel count (and per-window fan-in) is two orders of
// magnitude bigger than the 4x4 fabrics above.
TEST(ParallelScenario, EngineModesAreBitIdenticalOnMesh32) {
  exp::ScenarioSpec spec;
  spec.name = "modes-mesh-32x32";
  spec.topology = noc::TopologyKind::kMesh;
  spec.width = spec.height = 32;
  spec.pattern = noc::BePattern::kUniform;
  spec.be_interarrival_ps = 20000;
  spec.gs_set = noc::GsSetKind::kRing;
  spec.gs_period_ps = 8000;
  spec.duration_ps = 60000;
  const exp::ScenarioResult one = run_scenario(spec);
  ASSERT_TRUE(one.ok()) << one.error;
  EXPECT_GT(one.stats.events, 0u);
  for (const EngineMode& m : kEngineModes) {
    spec.shards = 4;
    spec.elide_windows = m.elide;
    spec.batched_handoff = m.batched;
    spec.spin_us = m.spin_us;
    spec.force_spin = m.force_spin;
    const exp::ScenarioResult n = run_scenario(spec);
    ASSERT_TRUE(n.ok()) << m.tag << ": " << n.error;
    EXPECT_EQ(n.stats, one.stats) << "mode=" << m.tag;
  }
}

// Sharding x runtime connection churn: broker admission, BE-packet
// programming, drain-confirmed closes — the control plane defers every
// cross-shard notification by the same shard-count-independent amount,
// so the full lifecycle reproduces bit for bit.
TEST(ParallelScenario, ChurnIsBitIdenticalAcrossShards) {
  const auto grid = exp::find_preset("gs-churn-4x4");
  ASSERT_TRUE(grid.has_value());
  for (exp::ScenarioSpec spec : grid->expand()) {
    if (spec.topology != noc::TopologyKind::kMesh &&
        spec.topology != noc::TopologyKind::kGraph) {
      continue;  // two fabrics keep the runtime bounded
    }
    spec.duration_ps = 1500000;
    const exp::ScenarioResult one = run_scenario(spec);
    ASSERT_TRUE(one.ok()) << spec.name << ": " << one.error;
    EXPECT_GT(one.stats.churn_requested, 0u) << spec.name;
    for (const unsigned shards : {2u, 4u}) {
      spec.shards = shards;
      const exp::ScenarioResult n = run_scenario(spec);
      ASSERT_TRUE(n.ok())
          << spec.name << " shards=" << shards << ": " << n.error;
      EXPECT_EQ(n.stats, one.stats) << spec.name << " shards=" << shards;
    }
    // Churn is the hardest case for elision: control-plane keys (broker
    // admissions, drain-confirmed closes) bound the horizon jump, so
    // every engine mode must still replay the lifecycle bit for bit.
    if (spec.topology == noc::TopologyKind::kMesh) {
      for (const EngineMode& m : kEngineModes) {
        spec.shards = 4;
        spec.elide_windows = m.elide;
        spec.batched_handoff = m.batched;
        spec.spin_us = m.spin_us;
        spec.force_spin = m.force_spin;
        const exp::ScenarioResult n = run_scenario(spec);
        ASSERT_TRUE(n.ok()) << spec.name << " " << m.tag << ": " << n.error;
        EXPECT_EQ(n.stats, one.stats) << spec.name << " mode=" << m.tag;
      }
    }
  }
}

// The report layer keeps sharding out of the deterministic section:
// stats_json() of a sharded sweep is byte-equal to the single-kernel
// one (this is what CI's shards-1-vs-N cmp checks at scale).
TEST(ParallelScenario, SweepStatsJsonIsByteEqualAcrossShards) {
  exp::SweepGrid g;
  g.base.width = g.base.height = 4;
  g.base.duration_ps = 300000;
  g.base.gs_set = noc::GsSetKind::kRing;
  g.base.gs_period_ps = 8000;
  std::vector<exp::ScenarioSpec> one = g.expand();
  std::vector<exp::ScenarioSpec> four = g.expand();
  for (exp::ScenarioSpec& s : four) s.shards = 4;
  const std::string a = exp::SweepRunner().run(one, 1).stats_json();
  const std::string b = exp::SweepRunner().run(four, 1).stats_json();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  // The effective shard count and the engine's window counters are
  // reported, but only with timing — never in the comparable stats.
  const auto rep = exp::SweepRunner().run(four, 1);
  EXPECT_NE(rep.full_json().find("\"shards\""), std::string::npos);
  EXPECT_EQ(rep.stats_json().find("\"shards\""), std::string::npos);
  EXPECT_NE(rep.full_json().find("\"windows_run\""), std::string::npos);
  EXPECT_NE(rep.full_json().find("\"windows_elided\""), std::string::npos);
  EXPECT_EQ(rep.stats_json().find("\"windows_run\""), std::string::npos);
  EXPECT_EQ(rep.stats_json().find("\"windows_elided\""), std::string::npos);
}

}  // namespace
}  // namespace mango
