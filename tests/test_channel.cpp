// Unit tests for the 4-phase bundled-data channel model.
#include <gtest/gtest.h>

#include <optional>

#include "sim/channel.hpp"

namespace mango::sim {
namespace {

struct ChannelFixture : ::testing::Test {
  Simulator sim;
  ChannelTiming timing{400, 250};
  Channel<int> ch{sim, timing};
};

TEST_F(ChannelFixture, TokenArrivesAfterForwardLatency) {
  std::optional<int> got;
  Time arrival = 0;
  ch.set_receiver([&](int&& v) {
    got = v;
    arrival = sim.now();
  });
  sim.at(1000, [&] { ch.send(42); });
  sim.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 42);
  EXPECT_EQ(arrival, 1400u);
}

TEST_F(ChannelFixture, ProducerReadyAgainAfterAckPlusRtz) {
  Time ready_at = 0;
  ch.set_receiver([&](int&&) { ch.ack(); });
  ch.set_on_ready([&] { ready_at = sim.now(); });
  ch.send(1);
  sim.run();
  // forward 400 + rtz 250.
  EXPECT_EQ(ready_at, 650u);
  EXPECT_TRUE(ch.ready());
}

TEST_F(ChannelFixture, CycleTimeIsForwardPlusRtz) {
  EXPECT_EQ(timing.cycle(), 650u);
  int received = 0;
  Time last = 0;
  Time gap = 0;
  ch.set_receiver([&](int&&) {
    ++received;
    if (received == 2) gap = sim.now() - last;
    last = sim.now();
    ch.ack();
  });
  ch.set_on_ready([&] {
    if (received < 2) ch.send(received);
  });
  ch.send(0);
  sim.run();
  EXPECT_EQ(received, 2);
  EXPECT_EQ(gap, timing.cycle());
}

TEST_F(ChannelFixture, SendOnBusyChannelIsProtocolViolation) {
  ch.set_receiver([](int&&) {});
  ch.send(1);
  EXPECT_THROW(ch.send(2), ModelError);
}

TEST_F(ChannelFixture, AckWithoutDeliveredTokenIsProtocolViolation) {
  ch.set_receiver([](int&&) {});
  EXPECT_THROW(ch.ack(), ModelError);
}

TEST_F(ChannelFixture, SendWithoutReceiverIsAnError) {
  Channel<int> orphan(sim, timing);
  EXPECT_THROW(orphan.send(9), ModelError);
}

TEST_F(ChannelFixture, NotReadyWhileTokenInFlight) {
  ch.set_receiver([](int&&) {});
  EXPECT_TRUE(ch.ready());
  ch.send(5);
  EXPECT_FALSE(ch.ready());
  sim.run();
  EXPECT_FALSE(ch.ready());  // delivered but unacked
  ch.ack();
  sim.run();
  EXPECT_TRUE(ch.ready());
}

TEST_F(ChannelFixture, CountsTokens) {
  int n = 0;
  ch.set_receiver([&](int&&) {
    ++n;
    ch.ack();
  });
  ch.set_on_ready([&] {
    if (n < 5) ch.send(n);
  });
  ch.send(0);
  sim.run();
  EXPECT_EQ(ch.tokens_sent(), 5u);
}

TEST(ChannelMoveOnly, CarriesMoveOnlyPayloads) {
  Simulator sim;
  Channel<std::unique_ptr<int>> ch(sim, ChannelTiming{100, 100});
  int got = 0;
  ch.set_receiver([&](std::unique_ptr<int>&& p) { got = *p; });
  ch.send(std::make_unique<int>(7));
  sim.run();
  EXPECT_EQ(got, 7);
}

}  // namespace
}  // namespace mango::sim
