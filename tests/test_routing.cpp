// The routing layer: per-topology route properties, self-routes, the
// dateline VC-class rule and the channel-dependency-graph deadlock
// validator — including its rejection of intentionally cyclic routing
// functions.
#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "noc/network/network.hpp"
#include "noc/network/routing.hpp"
#include "noc/network/topology.hpp"
#include "sim/context.hpp"
#include "sim/random.hpp"

namespace mango::noc {
namespace {

std::vector<TopologySpec> fuzz_specs() {
  return {
      TopologySpec::mesh(2, 2),
      TopologySpec::mesh(4, 4),
      TopologySpec::mesh(5, 3),
      TopologySpec::mesh(1, 6),
      TopologySpec::torus(2, 2),
      TopologySpec::torus(4, 4),
      TopologySpec::torus(3, 5),
      TopologySpec::ring(2),
      TopologySpec::ring(5),
      TopologySpec::ring(8),
      TopologySpec::irregular(GraphSpec::irregular(8)),
      TopologySpec::irregular(GraphSpec::irregular(16)),
      TopologySpec::irregular(GraphSpec::parse("0-1,1-2,2-3,3-0,1-3")),
  };
}

/// The property bundle every (topology, canonical routing) pair must
/// satisfy, checked over fuzzed src/dst pairs:
///   * the route reaches dst over wired links (topology-aware walk),
///   * its length equals the algorithm's hop_distance,
///   * no hop is a u-turn (the BE delivery code would fire early),
///   * the channel-dependency graph is acyclic.
TEST(RoutingProperties, EveryTopologyRoutingPairFuzzedEndToEnd) {
  for (const TopologySpec& spec : fuzz_specs()) {
    const auto topo = make_topology(spec);
    const auto routing = make_routing(*topo);

    const DeadlockCheck check = check_deadlock_freedom(
        *topo, *routing, routing->required_be_vcs());
    EXPECT_TRUE(check.acyclic)
        << topo->label() << "/" << routing->name() << ": " << check.cycle;

    sim::Rng rng(0xF00D + spec.width);
    const std::size_t n = topo->node_count();
    const unsigned pairs = n <= 16 ? 0 : 256;  // small: exhaustive
    const auto check_pair = [&](NodeId src, NodeId dst) {
      if (src == dst) return;
      const std::vector<Direction> moves = routing->route(src, dst);
      ASSERT_TRUE(topo->route_reaches(src, dst, moves))
          << topo->label() << " " << to_string(src) << "->"
          << to_string(dst);
      EXPECT_EQ(moves.size(), routing->hop_distance(src, dst))
          << topo->label() << " " << to_string(src) << "->"
          << to_string(dst);
      // No u-turns: walk and compare each out port to the arrival port.
      NodeId cur = src;
      PortIdx in = kLocalPort;
      for (const Direction d : moves) {
        ASSERT_TRUE(!is_network_port(in) || in != port_of(d))
            << topo->label() << ": u-turn at " << to_string(cur);
        const auto peer = topo->link_peer(cur, port_of(d));
        ASSERT_TRUE(peer.has_value());
        cur = peer->node;
        in = peer->port;
      }
    };
    if (pairs == 0) {
      for (std::size_t s = 0; s < n; ++s) {
        for (std::size_t d = 0; d < n; ++d) {
          check_pair(topo->node_at(s), topo->node_at(d));
        }
      }
    } else {
      for (unsigned i = 0; i < pairs; ++i) {
        check_pair(topo->node_at(rng.next_below(n)),
                   topo->node_at(rng.next_below(n)));
      }
    }
  }
}

TEST(RoutingProperties, HopDistanceIsWrapAware) {
  const auto torus = make_topology(TopologySpec::torus(4, 4));
  const auto torus_routing = make_routing(*torus);
  // (0,0) -> (3,3) is 6 mesh hops but 2 torus hops (one wrap each way).
  EXPECT_EQ(torus_routing->hop_distance({0, 0}, {3, 3}), 2u);
  EXPECT_EQ(hop_distance({0, 0}, {3, 3}), 6u);  // the mesh-only function

  const auto ring = make_topology(TopologySpec::ring(8));
  const auto ring_routing = make_routing(*ring);
  EXPECT_EQ(ring_routing->hop_distance({0, 0}, {7, 0}), 1u);
  EXPECT_EQ(ring_routing->hop_distance({0, 0}, {4, 0}), 4u);
}

// The mesh-only free step() must fail loudly when fed a wrap move
// instead of silently wrapping the 16-bit coordinate.
TEST(RoutingProperties, FreeStepRejectsCoordinateWraps) {
  EXPECT_THROW(step({0, 0}, Direction::kWest), mango::ModelError);
  EXPECT_THROW(step({0, 0}, Direction::kSouth), mango::ModelError);
  EXPECT_EQ(step({1, 1}, Direction::kWest), (NodeId{0, 1}));
  // route_reaches tolerates (and fails) such sequences instead.
  EXPECT_FALSE(route_reaches({0, 0}, {0, 0},
                             {Direction::kWest, Direction::kEast}));
}

TEST(SelfRoutes, ShortestUturnFreeCyclesPerTopology) {
  for (const TopologySpec& spec : fuzz_specs()) {
    if (spec.kind == TopologyKind::kMesh &&
        (spec.width < 2 || spec.height < 2)) {
      continue;  // path-shaped meshes have no cycle (checked below)
    }
    const auto topo = make_topology(spec);
    const auto routing = make_routing(*topo);
    for (std::size_t i = 0; i < topo->node_count(); ++i) {
      const NodeId n = topo->node_at(i);
      const std::vector<Direction> cycle = routing->self_route(n);
      ASSERT_GE(cycle.size(), 2u) << topo->label();
      EXPECT_TRUE(topo->route_reaches(n, n, cycle)) << topo->label();
    }
  }
}

TEST(SelfRoutes, MeshUsesTheFourHopSquare) {
  const auto topo = make_topology(TopologySpec::mesh(4, 4));
  const auto routing = make_routing(*topo);
  EXPECT_EQ(routing->self_route({0, 0}).size(), 4u);
  // A 2-node torus ring has a 2-hop cycle over the parallel links.
  const auto torus = make_topology(TopologySpec::torus(2, 2));
  EXPECT_EQ(make_routing(*torus)->self_route({0, 0}).size(), 2u);
}

TEST(SelfRoutes, AcyclicFabricsFailLoudly) {
  // A pure tree has no u-turn-free cycle at all.
  const auto tree =
      make_topology(TopologySpec::irregular(GraphSpec::parse("0-1,1-2,1-3")));
  EXPECT_THROW(make_routing(*tree)->self_route({0, 0}), mango::ModelError);
  // Neither does a 1-wide (path-shaped) mesh.
  const auto path = make_topology(TopologySpec::mesh(1, 6));
  EXPECT_THROW(make_routing(*path)->self_route({0, 2}), mango::ModelError);
}

// --- the deadlock validator itself ------------------------------------------

/// An intentionally cyclic routing function: always route clockwise
/// (East) around the ring, with no dateline classes. Its channel
/// dependency graph is the full East ring cycle.
class ClockwiseRingRouting : public RoutingAlgorithm {
 public:
  explicit ClockwiseRingRouting(const Topology& topo)
      : RoutingAlgorithm(topo) {}
  const char* name() const override { return "clockwise"; }
  std::vector<Direction> route(NodeId src, NodeId dst) const override {
    const unsigned n = static_cast<unsigned>(topo_.node_count());
    const unsigned hops = (dst.x + n - src.x) % n;
    return std::vector<Direction>(hops, Direction::kEast);
  }
};

TEST(DeadlockValidator, RejectsIntentionallyCyclicRouting) {
  const auto ring = make_topology(TopologySpec::ring(4));
  ClockwiseRingRouting cyclic(*ring);
  const DeadlockCheck check = check_deadlock_freedom(*ring, cyclic, 2);
  EXPECT_FALSE(check.acyclic);
  EXPECT_NE(check.cycle.find("->"), std::string::npos) << check.cycle;
}

TEST(DeadlockValidator, TorusWithoutSecondBeVcIsCyclic) {
  // The same minimal DOR routing that is valid with dateline classes is
  // correctly reported cyclic when the router config lacks the second
  // BE VC the classes live on.
  const auto torus = make_topology(TopologySpec::torus(4, 4));
  const auto routing = make_routing(*torus);
  EXPECT_TRUE(check_deadlock_freedom(*torus, *routing, 2).acyclic);
  const DeadlockCheck one_vc = check_deadlock_freedom(*torus, *routing, 1);
  EXPECT_FALSE(one_vc.acyclic);
  EXPECT_FALSE(one_vc.cycle.empty());
}

TEST(DeadlockValidator, UnconstrainedShortestPathsOnIrregularGraphRejected) {
  // The "obvious" minimal routing on the built-in irregular fabric is
  // genuinely deadlock-prone — the reason make_routing installs
  // up*/down* there instead.
  const auto topo =
      make_topology(TopologySpec::irregular(GraphSpec::irregular(16)));
  ShortestPathRouting minimal(*topo);
  EXPECT_FALSE(check_deadlock_freedom(*topo, minimal, 1).acyclic);
  UpDownRouting updown(*topo);
  EXPECT_TRUE(check_deadlock_freedom(*topo, updown, 1).acyclic);
}

TEST(DeadlockValidator, NetworkConstructionEnforcesIt) {
  // Torus with be_vcs = 1: rejected before any router is built.
  sim::SimContext ctx;
  NetworkConfig cfg;
  cfg.topology = TopologySpec::torus(3, 3);
  EXPECT_THROW(Network(ctx, cfg), mango::ModelError);
  cfg.router.be_vcs = 2;
  Network net(ctx, cfg);  // with dateline classes it constructs
  EXPECT_EQ(net.node_count(), 9u);
}

// --- dateline VC classes -----------------------------------------------------

TEST(VcClasses, DatelineRuleStepsAsSpecified) {
  // Injection starts at class 0; crossing a dateline promotes to 1; a
  // dimension change resets; staying in-dimension inherits.
  EXPECT_EQ(be_vc_class_step(kLocalPort, Direction::kEast, 0, false), 0u);
  EXPECT_EQ(be_vc_class_step(kLocalPort, Direction::kEast, 0, true), 1u);
  const PortIdx from_west = port_of(Direction::kWest);
  EXPECT_EQ(be_vc_class_step(from_west, Direction::kEast, 1, false), 1u);
  EXPECT_EQ(be_vc_class_step(from_west, Direction::kNorth, 1, false), 0u);
  EXPECT_EQ(be_vc_class_step(from_west, Direction::kNorth, 1, true), 1u);
}

TEST(VcClasses, TorusMapMarksExactlyTheWrapPorts) {
  const auto torus = make_topology(TopologySpec::torus(4, 3));
  const auto routing = make_routing(*torus);
  const BeVcClassMap map = routing->vc_class_map();
  ASSERT_TRUE(map.enabled);
  ASSERT_EQ(map.dateline.size(), torus->node_count());
  for (std::size_t i = 0; i < torus->node_count(); ++i) {
    const NodeId n = torus->node_at(i);
    EXPECT_EQ(map.is_dateline(i, port_of(Direction::kEast)), n.x == 3u);
    EXPECT_EQ(map.is_dateline(i, port_of(Direction::kWest)), n.x == 0u);
    EXPECT_EQ(map.is_dateline(i, port_of(Direction::kNorth)), n.y == 2u);
    EXPECT_EQ(map.is_dateline(i, port_of(Direction::kSouth)), n.y == 0u);
  }
  // Mesh routing has no classes.
  const auto mesh = make_topology(TopologySpec::mesh(4, 4));
  EXPECT_FALSE(make_routing(*mesh)->vc_class_map().enabled);
}

}  // namespace
}  // namespace mango::noc
