// Unit + property tests for the BE header/packet format (Section 5).
#include <gtest/gtest.h>

#include "noc/common/packet.hpp"
#include "sim/random.hpp"

namespace mango::noc {
namespace {

TEST(BeHeader, SingleMoveEncodesMoveDeliveryAndIface) {
  BeRoute r;
  r.moves = {Direction::kEast};
  r.iface = LocalIface::kNetworkAdapter;
  const std::uint32_t h = build_be_header(r);
  // MSBs: East (01), then delivery = opposite(East) = West (11), then
  // iface 00, then zero padding.
  EXPECT_EQ(header_code(h), 0b01u);
  const std::uint32_t h1 = rotate_header(h);
  EXPECT_EQ(header_code(h1), 0b11u);
  const std::uint32_t h2 = rotate_header(h1);
  EXPECT_EQ(header_code(h2), 0b00u);
}

TEST(BeHeader, ProgrammingIfaceBitSurvivesRotation) {
  BeRoute r;
  r.moves = {Direction::kNorth, Direction::kNorth};
  r.iface = LocalIface::kProgramming;
  std::uint32_t h = build_be_header(r);
  h = rotate_header(h);            // consumed N
  h = rotate_header(h);            // consumed N
  EXPECT_EQ(header_code(h), static_cast<std::uint8_t>(Direction::kSouth));
  h = rotate_header(h);            // consumed delivery code
  EXPECT_EQ(header_code(h), 0b01u);  // kProgramming
}

TEST(BeHeader, EmptyRouteIsRejected) {
  BeRoute r;
  EXPECT_THROW(build_be_header(r), mango::ModelError);
}

TEST(BeHeader, FourteenMovesFitFifteenDoNot) {
  BeRoute r;
  r.moves.assign(14, Direction::kEast);  // 14 moves + delivery = 15 codes
  EXPECT_NO_THROW(build_be_header(r));
  r.moves.assign(15, Direction::kEast);  // 16 codes > budget
  EXPECT_THROW(build_be_header(r), mango::ModelError);
}

TEST(BeHeader, RotationIsCircular) {
  const std::uint32_t h = 0x9ABCDEF1;
  std::uint32_t r = h;
  for (int i = 0; i < 16; ++i) r = rotate_header(r);
  EXPECT_EQ(r, h);  // 16 rotations of 2 bits = full circle
}

/// Property: walking the header consumes exactly the encoded moves, the
/// delivery code and the interface bits, for random routes.
class HeaderWalk : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HeaderWalk, RandomRoutesWalkCorrectly) {
  sim::Rng rng(GetParam());
  for (int trial = 0; trial < 500; ++trial) {
    BeRoute r;
    const auto n = 1 + rng.next_below(14);
    for (std::uint64_t i = 0; i < n; ++i) {
      r.moves.push_back(static_cast<Direction>(rng.next_below(4)));
    }
    r.iface = rng.next_bool(0.5) ? LocalIface::kProgramming
                                 : LocalIface::kNetworkAdapter;
    std::uint32_t h = build_be_header(r);
    for (Direction d : r.moves) {
      ASSERT_EQ(header_code(h), static_cast<std::uint8_t>(d));
      h = rotate_header(h);
    }
    ASSERT_EQ(header_code(h), static_cast<std::uint8_t>(opposite(r.moves.back())));
    h = rotate_header(h);
    ASSERT_EQ(header_code(h), static_cast<std::uint8_t>(r.iface));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeaderWalk, ::testing::Values(7u, 99u, 4242u));

TEST(BePacket, HeaderPlusPayloadWithEopOnLast) {
  BeRoute r;
  r.moves = {Direction::kWest};
  const BePacket pkt = make_be_packet(r, {10, 20, 30}, /*tag=*/5);
  ASSERT_EQ(pkt.size(), 4u);
  EXPECT_EQ(pkt.flits[0].data, build_be_header(r));
  EXPECT_FALSE(pkt.flits[0].eop);
  EXPECT_EQ(pkt.flits[1].data, 10u);
  EXPECT_EQ(pkt.flits[3].data, 30u);
  EXPECT_TRUE(pkt.flits[3].eop);
  EXPECT_FALSE(pkt.flits[2].eop);
  for (const auto& f : pkt.flits) EXPECT_EQ(f.tag, 5u);
}

TEST(BePacket, EmptyPayloadGetsFillerFlit) {
  BeRoute r;
  r.moves = {Direction::kSouth};
  const BePacket pkt = make_be_packet(r, {});
  ASSERT_EQ(pkt.size(), 2u);
  EXPECT_TRUE(pkt.flits[1].eop);
  EXPECT_EQ(pkt.flits[1].data, 0u);  // a nop programming word
}

TEST(BePacket, SequenceNumbersAreConsecutive) {
  BeRoute r;
  r.moves = {Direction::kNorth};
  const BePacket pkt = make_be_packet(r, {1, 2, 3, 4});
  for (std::size_t i = 1; i < pkt.size(); ++i) {
    EXPECT_EQ(pkt.flits[i].seq, i);
  }
}

TEST(Direction, OppositeIsAnInvolution) {
  for (PortIdx p = 0; p < kNumDirections; ++p) {
    const Direction d = direction_of(p);
    EXPECT_EQ(opposite(opposite(d)), d);
    EXPECT_NE(opposite(d), d);
  }
}

}  // namespace
}  // namespace mango::noc
