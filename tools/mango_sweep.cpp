// mango_sweep: run a grid of MANGO simulation scenarios across worker
// threads and report per-scenario stats.
//
//   mango_sweep --preset ci-smoke --jobs 4 --out results.json
//   mango_sweep --mesh 4x4,8x8 --pattern uniform,tornado
//               --interarrival 4000,16000 --gs ring --seeds 2
//
// Exit codes: 0 = all scenarios ran with guarantees met; 1 = usage or
// scenario error; 2 = at least one GS guarantee violation.
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "exp/scenario.hpp"
#include "exp/sweep.hpp"
#include "sim/stats.hpp"

using namespace mango;

namespace {

void usage(std::FILE* out) {
  std::fputs(
      "usage: mango_sweep [--preset NAME | grid flags] [options]\n"
      "\n"
      "  --preset NAME         run a named preset grid (see --list-presets)\n"
      "  --list-presets        print preset names and sizes, then exit\n"
      "\n"
      "grid flags (combine freely; each takes a comma-separated list):\n"
      "  --topology T[,T...]   mesh torus ring graph cmesh, or 'all'\n"
      "                        (= the four base kinds; cmesh is opt-in).\n"
      "                        torus and ring enable the second BE VC\n"
      "                        (dateline deadlock avoidance). ring/graph\n"
      "                        use width*height nodes of the --mesh size;\n"
      "                        graph is the built-in irregular fabric;\n"
      "                        cmesh is a mesh with --concentration cores\n"
      "                        per router\n"
      "  --mesh WxH[,WxH...]   fabric sizes (default 4x4)\n"
      "  --concentration N     cores per router on cmesh fabrics\n"
      "                        (default 1; ignored elsewhere)\n"
      "  --pattern P[,P...]    uniform transpose bit-complement tornado\n"
      "                        hotspot bursty, or 'all' (transpose and\n"
      "                        tornado are undefined on some fabrics and\n"
      "                        fail loudly there)\n"
      "  --interarrival PS     mean BE interarrival per node, picoseconds\n"
      "  --gs K[,K...]         none ring random-pairs all-to-hotspot\n"
      "  --churn PS[,PS...]    mean gap between runtime connection-open\n"
      "                        requests (ConnectionBroker admission +\n"
      "                        BE-packet programming); 0 = no churn\n"
      "  --seeds N             seeds 1..N (or --seed S for a single one)\n"
      "\n"
      "scenario options:\n"
      "  --gs-period PS        GS flit period per connection (0 = saturate)\n"
      "  --churn-hold PS       mean holding time of churn connections\n"
      "  --churn-queue N       broker queue depth (0 = reject when busy)\n"
      "  --churn-gs-period PS  CBR period of churn streams (>= worst-case\n"
      "                        per-VC service time, so closes can drain)\n"
      "  --duration-ns N       simulated horizon per scenario\n"
      "  --payload W           BE payload words per packet\n"
      "  --arbiter A           fair-share (default), static-priority, or\n"
      "                        unregulated (ablation: no guarantees)\n"
      "\n"
      "run options:\n"
      "  --filter SUBSTR       run only scenarios whose name contains\n"
      "                        SUBSTR (applied after grid expansion; the\n"
      "                        scale-smoke CI job uses this to pick the\n"
      "                        small rows of scale-1k)\n"
      "  --jobs N              worker threads (default: hardware cores)\n"
      "  --shards N            kernel shards per scenario: the fabric is\n"
      "                        partitioned across N threads advancing in\n"
      "                        conservative lookahead windows. Stats are\n"
      "                        byte-identical for every N; wall time is\n"
      "                        not. Clamped (with a warning) so that\n"
      "                        jobs x shards never exceeds the hardware\n"
      "                        thread count\n"
      "  --repeat N            run each scenario N times; stats come from\n"
      "                        run 1 (and must match every rerun), wall\n"
      "                        time keeps the best — the JSON report's\n"
      "                        events_per_sec column is then a\n"
      "                        reproducible best-of-N figure\n"
      "  --spin-us N           shard-barrier spin budget in microseconds\n"
      "                        before falling back to the condvar sleep\n"
      "                        (default 50; 0 = condvar-only; ignored\n"
      "                        when cores < shards). Stats unchanged\n"
      "  --no-elide            disable quiet-window elision (ablation;\n"
      "                        stats unchanged, wall time is not)\n"
      "  --per-record-handoff  per-record boundary publishes instead of\n"
      "                        one batch per window (ablation; stats\n"
      "                        unchanged, wall time is not)\n"
      "  --no-plan-cache       rebuild the fabric plan (topology, route\n"
      "                        tables, deadlock certificate) per scenario\n"
      "                        instead of sharing one immutable plan per\n"
      "                        distinct fabric across the sweep (ablation;\n"
      "                        stats unchanged, wall time is not)\n"
      "  --build-threads N     worker threads materializing each fabric\n"
      "                        plan's route tables and dependency graph\n"
      "                        (default 1; plans are byte-identical for\n"
      "                        every N). Stats unchanged\n"
      "  --out FILE            write the JSON report to FILE\n"
      "  --stable              omit wall-clock fields from the JSON so\n"
      "                        reports of identical sweeps are byte-equal\n"
      "  --quiet               no per-scenario progress lines\n",
      out);
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) {
      out.push_back(s.substr(pos));
      break;
    }
    out.push_back(s.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return out;
}

bool parse_u64(const std::string& s, std::uint64_t* out) {
  // Digits only: strtoull would silently wrap a leading '-'.
  if (s.empty() || s[0] < '0' || s[0] > '9') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno == ERANGE || end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

bool parse_mesh(const std::string& s, std::uint16_t* w, std::uint16_t* h) {
  const std::size_t x = s.find('x');
  if (x == std::string::npos) return false;
  std::uint64_t pw = 0, ph = 0;
  if (!parse_u64(s.substr(0, x), &pw) || !parse_u64(s.substr(x + 1), &ph)) {
    return false;
  }
  if (pw == 0 || ph == 0 || pw > 64 || ph > 64) return false;
  *w = static_cast<std::uint16_t>(pw);
  *h = static_cast<std::uint16_t>(ph);
  return true;
}

[[noreturn]] void die(const std::string& msg) {
  std::fprintf(stderr, "mango_sweep: %s\n", msg.c_str());
  std::exit(1);
}

void print_summary(const exp::SweepReport& report) {
  sim::TablePrinter table({"scenario", "events", "BE pkts", "BE p99 ns",
                           "GS flits", "GS p99 ns", "jitter ns", "viol"});
  for (const exp::ScenarioResult& r : report.results) {
    if (!r.ok()) {
      table.add_row({r.spec.name, "ERROR", r.error, "", "", "", "", ""});
      continue;
    }
    const exp::ScenarioStats& st = r.stats;
    table.add_row({r.spec.name, std::to_string(st.events),
                   std::to_string(st.be_packets_delivered),
                   sim::TablePrinter::fmt(st.be_latency_p99_ns, 1),
                   std::to_string(st.gs_flits_delivered),
                   sim::TablePrinter::fmt(st.gs_latency_p99_ns, 1),
                   sim::TablePrinter::fmt(st.gs_jitter_max_ns, 2),
                   std::to_string(st.guarantee_violations)});
  }
  table.print();
  std::printf(
      "\n%zu scenarios, %zu failed, %llu guarantee violations, "
      "%llu events in %.0f ms with %u jobs (%.0f scenarios/hour)\n",
      report.results.size(), report.failed(),
      static_cast<unsigned long long>(report.total_violations()),
      static_cast<unsigned long long>(report.total_events()), report.wall_ms,
      report.jobs, report.scenarios_per_hour());
  std::printf("fabric plans: %llu built, %llu reused%s\n",
              static_cast<unsigned long long>(report.plan_builds),
              static_cast<unsigned long long>(report.plan_hits),
              report.plan_cache ? "" : " (plan cache off)");
  std::uint64_t creq = 0, crej = 0, cclosed = 0;
  for (const exp::ScenarioResult& r : report.results) {
    creq += r.stats.churn_requested;
    crej += r.stats.churn_rejected;
    cclosed += r.stats.churn_closed;
  }
  if (creq > 0) {
    std::printf("churn: %llu open requests, %llu rejected (blocking %.3f), "
                "%llu closes completed\n",
                static_cast<unsigned long long>(creq),
                static_cast<unsigned long long>(crej),
                static_cast<double>(crej) / static_cast<double>(creq),
                static_cast<unsigned long long>(cclosed));
  }
}

}  // namespace

int main(int argc, char** argv) {
  exp::SweepGrid grid;
  std::string preset;
  std::string filter;
  std::string out_file;
  unsigned jobs = 0;  // hardware concurrency
  unsigned repeat = 1;
  exp::SweepOptions sweep_opts;
  bool stable = false;
  bool quiet = false;
  bool have_grid_flags = false;
  // Scenario options given explicitly (so they override a preset even
  // when the value happens to equal the ScenarioSpec default).
  bool set_duration = false;
  bool set_gs_period = false;
  bool set_payload = false;
  bool set_arbiter = false;
  bool set_churn_hold = false;
  bool set_churn_queue = false;
  bool set_churn_gs_period = false;
  bool set_shards = false;
  bool set_spin_us = false;
  bool set_no_elide = false;
  bool set_per_record = false;

  const auto next_arg = [&](int& i, const char* flag) -> std::string {
    if (i + 1 >= argc) die(std::string(flag) + " needs an argument");
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") {
      usage(stdout);
      return 0;
    } else if (arg == "--list-presets") {
      for (const std::string& name : exp::preset_names()) {
        const auto g = exp::find_preset(name);
        std::string topos;
        const auto kinds = g->topologies.empty()
                               ? std::vector<noc::TopologyKind>{
                                     g->base.topology}
                               : g->topologies;
        for (const noc::TopologyKind k : kinds) {
          if (!topos.empty()) topos += ",";
          topos += noc::to_string(k);
        }
        std::printf("%-16s %3zu scenarios  topologies=%s\n", name.c_str(),
                    g->expand().size(), topos.c_str());
      }
      return 0;
    } else if (arg == "--preset") {
      preset = next_arg(i, "--preset");
    } else if (arg == "--topology") {
      std::vector<noc::TopologyKind> kinds;
      for (const std::string& t : split_csv(next_arg(i, "--topology"))) {
        if (t == "all") {
          kinds = noc::all_topology_kinds();
          break;
        }
        const auto parsed = noc::topology_kind_from_string(t);
        if (!parsed.has_value()) die("unknown topology '" + t + "'");
        kinds.push_back(*parsed);
      }
      grid.topologies = kinds;
      for (const noc::TopologyKind k : kinds) {
        // Wrap fabrics route with dateline VC classes; arm the second
        // BE VC the scheme needs (documented in --help).
        if (k == noc::TopologyKind::kTorus ||
            k == noc::TopologyKind::kRing) {
          grid.base.router.be_vcs = 2;
        }
      }
      have_grid_flags = true;
    } else if (arg == "--mesh") {
      for (const std::string& m : split_csv(next_arg(i, "--mesh"))) {
        std::uint16_t w = 0, h = 0;
        if (!parse_mesh(m, &w, &h)) die("bad mesh '" + m + "' (want WxH)");
        grid.meshes.emplace_back(w, h);
      }
      have_grid_flags = true;
    } else if (arg == "--pattern") {
      for (const std::string& p : split_csv(next_arg(i, "--pattern"))) {
        if (p == "all") {
          grid.patterns = noc::all_be_patterns();
          break;
        }
        const auto parsed = noc::be_pattern_from_string(p);
        if (!parsed.has_value()) die("unknown pattern '" + p + "'");
        grid.patterns.push_back(*parsed);
      }
      have_grid_flags = true;
    } else if (arg == "--interarrival") {
      for (const std::string& v : split_csv(next_arg(i, "--interarrival"))) {
        std::uint64_t ps = 0;
        if (!parse_u64(v, &ps)) die("bad interarrival '" + v + "'");
        grid.interarrivals_ps.push_back(ps);
      }
      have_grid_flags = true;
    } else if (arg == "--gs") {
      for (const std::string& k : split_csv(next_arg(i, "--gs"))) {
        const auto parsed = noc::gs_set_from_string(k);
        if (!parsed.has_value()) die("unknown GS set '" + k + "'");
        grid.gs_sets.push_back(*parsed);
      }
      have_grid_flags = true;
    } else if (arg == "--churn") {
      for (const std::string& v : split_csv(next_arg(i, "--churn"))) {
        std::uint64_t ps = 0;
        if (!parse_u64(v, &ps)) die("bad churn interarrival '" + v + "'");
        grid.churn_interarrivals_ps.push_back(ps);
      }
      have_grid_flags = true;
    } else if (arg == "--churn-hold") {
      std::uint64_t ps = 0;
      if (!parse_u64(next_arg(i, "--churn-hold"), &ps) || ps == 0) {
        die("bad --churn-hold");
      }
      grid.base.churn_hold_ps = ps;
      set_churn_hold = true;
    } else if (arg == "--churn-queue") {
      std::uint64_t n = 0;
      if (!parse_u64(next_arg(i, "--churn-queue"), &n) || n > 100000) {
        die("bad --churn-queue");
      }
      grid.base.churn_queue = static_cast<unsigned>(n);
      set_churn_queue = true;
    } else if (arg == "--churn-gs-period") {
      std::uint64_t ps = 0;
      if (!parse_u64(next_arg(i, "--churn-gs-period"), &ps) || ps == 0) {
        die("bad --churn-gs-period");
      }
      grid.base.churn_gs_period_ps = ps;
      set_churn_gs_period = true;
    } else if (arg == "--concentration") {
      std::uint64_t k = 0;
      if (!parse_u64(next_arg(i, "--concentration"), &k) || k == 0 ||
          k > 16) {
        die("bad --concentration (want 1..16)");
      }
      grid.base.concentration = static_cast<std::uint16_t>(k);
      have_grid_flags = true;
    } else if (arg == "--seeds") {
      std::uint64_t n = 0;
      if (!parse_u64(next_arg(i, "--seeds"), &n) || n == 0 || n > 4096) {
        die("bad --seeds count");
      }
      grid.seeds.clear();
      for (std::uint64_t s = 1; s <= n; ++s) grid.seeds.push_back(s);
      have_grid_flags = true;
    } else if (arg == "--seed") {
      std::uint64_t s = 0;
      if (!parse_u64(next_arg(i, "--seed"), &s)) die("bad --seed");
      grid.seeds = {s};
      have_grid_flags = true;
    } else if (arg == "--gs-period") {
      std::uint64_t ps = 0;
      if (!parse_u64(next_arg(i, "--gs-period"), &ps)) die("bad --gs-period");
      grid.base.gs_period_ps = ps;
      set_gs_period = true;
    } else if (arg == "--duration-ns") {
      std::uint64_t ns = 0;
      if (!parse_u64(next_arg(i, "--duration-ns"), &ns) || ns == 0 ||
          ns > 1000000000000ull) {
        die("bad --duration-ns");
      }
      grid.base.duration_ps = ns * 1000;
      set_duration = true;
    } else if (arg == "--payload") {
      std::uint64_t w = 0;
      if (!parse_u64(next_arg(i, "--payload"), &w) || w == 0 || w > 256) {
        die("bad --payload");
      }
      grid.base.payload_words = static_cast<unsigned>(w);
      set_payload = true;
    } else if (arg == "--arbiter") {
      const std::string a = next_arg(i, "--arbiter");
      if (a == "fair-share") {
        grid.base.router.arbiter = noc::ArbiterKind::kFairShare;
      } else if (a == "static-priority") {
        grid.base.router.arbiter = noc::ArbiterKind::kStaticPriority;
      } else if (a == "unregulated") {
        grid.base.router.arbiter = noc::ArbiterKind::kUnregulated;
      } else {
        die("unknown arbiter '" + a + "'");
      }
      set_arbiter = true;
    } else if (arg == "--jobs") {
      std::uint64_t n = 0;
      if (!parse_u64(next_arg(i, "--jobs"), &n) || n > 1024) {
        die("bad --jobs");
      }
      jobs = static_cast<unsigned>(n);
    } else if (arg == "--shards") {
      std::uint64_t n = 0;
      if (!parse_u64(next_arg(i, "--shards"), &n) || n == 0 || n > 64) {
        die("bad --shards (want 1..64)");
      }
      grid.base.shards = static_cast<unsigned>(n);
      set_shards = true;
    } else if (arg == "--spin-us") {
      std::uint64_t n = 0;
      if (!parse_u64(next_arg(i, "--spin-us"), &n) || n > 10000) {
        die("bad --spin-us (want 0..10000)");
      }
      grid.base.spin_us = static_cast<std::uint32_t>(n);
      set_spin_us = true;
    } else if (arg == "--no-elide") {
      grid.base.elide_windows = false;
      set_no_elide = true;
    } else if (arg == "--per-record-handoff") {
      grid.base.batched_handoff = false;
      set_per_record = true;
    } else if (arg == "--no-plan-cache") {
      sweep_opts.plan_cache = false;
    } else if (arg == "--build-threads") {
      std::uint64_t n = 0;
      if (!parse_u64(next_arg(i, "--build-threads"), &n) || n == 0 ||
          n > 64) {
        die("bad --build-threads (want 1..64)");
      }
      sweep_opts.build_threads = static_cast<unsigned>(n);
    } else if (arg == "--repeat") {
      std::uint64_t n = 0;
      if (!parse_u64(next_arg(i, "--repeat"), &n) || n == 0 || n > 100) {
        die("bad --repeat (want 1..100)");
      }
      repeat = static_cast<unsigned>(n);
    } else if (arg == "--filter") {
      filter = next_arg(i, "--filter");
    } else if (arg == "--out") {
      out_file = next_arg(i, "--out");
    } else if (arg == "--stable") {
      stable = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      usage(stderr);
      die("unknown argument '" + arg + "'");
    }
  }

  if (!preset.empty()) {
    if (have_grid_flags) die("--preset cannot be combined with grid flags");
    const auto g = exp::find_preset(preset);
    if (!g.has_value()) die("unknown preset '" + preset + "'");
    // Explicit scenario options (--duration-ns etc.) still apply on top.
    const exp::ScenarioSpec base = grid.base;
    grid = *g;
    if (set_duration) grid.base.duration_ps = base.duration_ps;
    if (set_gs_period) grid.base.gs_period_ps = base.gs_period_ps;
    if (set_payload) grid.base.payload_words = base.payload_words;
    if (set_arbiter) grid.base.router.arbiter = base.router.arbiter;
    if (set_churn_hold) grid.base.churn_hold_ps = base.churn_hold_ps;
    if (set_churn_queue) grid.base.churn_queue = base.churn_queue;
    if (set_churn_gs_period) {
      grid.base.churn_gs_period_ps = base.churn_gs_period_ps;
    }
    if (set_shards) grid.base.shards = base.shards;
    if (set_spin_us) grid.base.spin_us = base.spin_us;
    if (set_no_elide) grid.base.elide_windows = base.elide_windows;
    if (set_per_record) grid.base.batched_handoff = base.batched_handoff;
  }

  std::vector<exp::ScenarioSpec> specs = grid.expand();
  if (!filter.empty()) {
    std::vector<exp::ScenarioSpec> kept;
    for (exp::ScenarioSpec& s : specs) {
      if (s.name.find(filter) != std::string::npos) {
        kept.push_back(std::move(s));
      }
    }
    if (kept.empty()) {
      die("--filter '" + filter + "' matches no scenario of this grid");
    }
    specs = std::move(kept);
  }
  if (specs.empty()) die("empty scenario grid");

  exp::SweepRunner::ProgressFn progress;
  if (!quiet) {
    std::printf("running %zu scenarios...\n", specs.size());
    progress = [](std::size_t done, std::size_t total,
                  const exp::ScenarioResult& r) {
      std::printf("[%3zu/%zu] %-40s %s (%.0f ms)\n", done, total,
                  r.spec.name.c_str(), r.ok() ? "ok" : r.error.c_str(),
                  r.wall_ms);
      std::fflush(stdout);
    };
  }

  const exp::SweepReport report =
      exp::SweepRunner().run(specs, jobs, progress, repeat, sweep_opts);

  if (!quiet) {
    std::printf("\n");
    print_summary(report);
  }

  if (!out_file.empty()) {
    std::FILE* f = std::fopen(out_file.c_str(), "w");
    if (f == nullptr) die("cannot open '" + out_file + "' for writing");
    const std::string json = stable ? report.stats_json() : report.full_json();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    if (!quiet) std::printf("report written to %s\n", out_file.c_str());
  }

  if (report.failed() > 0) return 1;
  if (report.total_violations() > 0) return 2;
  return 0;
}
