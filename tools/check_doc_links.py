#!/usr/bin/env python3
"""Cross-link checker: docs must not reference things that don't exist.

Greps README.md and DESIGN.md for the artifacts they point readers at —
preset names (``--preset NAME``), mango_sweep CLI flags (``--flag``),
benchmark binaries (``bench_*``), test suites (``test_*``) and tracked
benchmark histories (``BENCH_*.json``) — and verifies each one against
ground truth: ``mango_sweep --list-presets`` / ``--help`` output and the
bench/ and tests/ source trees.  Exits nonzero listing every dangling
reference, so CI fails when a rename or removal leaves the docs behind.

Usage: check_doc_links.py [--sweep-bin PATH] [--repo PATH]
"""

import argparse
import pathlib
import re
import subprocess
import sys

DOC_FILES = ["README.md", "DESIGN.md"]

# Flags that appear in docs but belong to other tools (cmake, ctest,
# benchmark binaries, git) rather than mango_sweep.  Anything matching
# these is skipped during the flag check.
NON_SWEEP_FLAGS = {
    "--output-on-failure",       # ctest
    "--test-dir",                # ctest
    "--benchmark_min_time",      # google-benchmark
    "--benchmark_format",        # google-benchmark
    "--benchmark_out",           # google-benchmark
    "--benchmark_out_format",    # google-benchmark
    "--build",                   # cmake
    "--target",                  # cmake
}

# Reverse check: execution-strategy flags whose whole point is the
# "stats are byte-identical, only wall time moves" contract.  Each must
# be documented in BOTH ``mango_sweep --help`` and README.md — a flag
# here that exists in the binary but not the docs (or vice versa) is a
# CI failure, so the contract surface can't silently drift.
REQUIRED_DOCUMENTED_FLAGS = {
    "--shards",
    "--repeat",
    "--spin-us",
    "--no-elide",
    "--per-record-handoff",
    "--no-plan-cache",
    "--build-threads",
}


def run(cmd):
    return subprocess.run(
        cmd, check=True, capture_output=True, text=True
    ).stdout


def collect_ground_truth(sweep_bin, repo):
    presets = set()
    for line in run([sweep_bin, "--list-presets"]).splitlines():
        m = re.match(r"\s*(\S+)\s+\d+ scenarios", line)
        if m:
            presets.add(m.group(1))

    flags = set(re.findall(r"--[a-z][a-z0-9-]*", run([sweep_bin, "--help"])))

    benches = {p.stem for p in (repo / "bench").glob("bench_*.cpp")}
    tests = {p.stem for p in (repo / "tests").glob("test_*.cpp")}
    bench_json = {p.name for p in repo.glob("BENCH_*.json")}
    return presets, flags, benches, tests, bench_json


def check_doc(path, presets, flags, benches, tests, bench_json):
    errors = []
    text = path.read_text()
    lines = text.splitlines()

    def where(needle):
        for i, line in enumerate(lines, 1):
            if needle in line:
                return f"{path.name}:{i}"
        return path.name

    # --preset NAME and `preset-name` preset references.  Preset names
    # are only checkable when adjacent to the word "preset" or a
    # --preset flag; bare backticked words are too ambiguous.
    for name in re.findall(r"--preset\s+`?([a-z0-9][a-z0-9-]*)`?", text):
        if name not in presets:
            errors.append(f"{where(name)}: preset `{name}` (via --preset) "
                          "not in --list-presets")
    for name in re.findall(r"`([a-z0-9][a-z0-9-]*)`\s+preset", text) + \
            re.findall(r"preset\s+`([a-z0-9][a-z0-9-]*)`", text):
        if name not in presets:
            errors.append(f"{where(name)}: preset `{name}` "
                          "not in --list-presets")

    # mango_sweep CLI flags: every --flag token in the docs must be a
    # real flag (or an explicitly whitelisted foreign tool's).
    for flag in set(re.findall(r"--[a-z][a-z0-9-]*", text)):
        if flag in NON_SWEEP_FLAGS:
            continue
        if flag.startswith("--benchmark"):
            continue
        if flag not in flags and flag.startswith("--"):
            # cmake -D options and long prose dashes don't match the
            # regex; anything that does and isn't known is dangling.
            errors.append(f"{where(flag)}: flag `{flag}` not in "
                          "mango_sweep --help")

    # bench_* and test_* artifact names.
    for name in set(re.findall(r"\b(bench_[a-z0-9_]+)\b", text)):
        if name.endswith(("_json", "_cpp")):
            continue
        if name not in benches:
            errors.append(f"{where(name)}: benchmark `{name}` has no "
                          f"bench/{name}.cpp")
    for name in set(re.findall(r"\b(test_[a-z0-9_]+)\b", text)):
        if name.endswith(("_json", "_cpp")):
            continue
        if name not in tests:
            errors.append(f"{where(name)}: test suite `{name}` has no "
                          f"tests/{name}.cpp")

    # BENCH_*.json histories.
    for name in set(re.findall(r"\b(BENCH_[A-Za-z0-9_]+\.json)\b", text)):
        if name == "BENCH_*.json".replace("*", name):  # never matches
            continue
        if name not in bench_json:
            errors.append(f"{where(name)}: history `{name}` does not exist")

    return errors


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--sweep-bin", default="build/mango_sweep")
    ap.add_argument("--repo", default=".")
    opts = ap.parse_args()

    repo = pathlib.Path(opts.repo).resolve()
    presets, flags, benches, tests, bench_json = collect_ground_truth(
        opts.sweep_bin, repo)
    if not presets:
        print("could not parse any presets from --list-presets",
              file=sys.stderr)
        return 2

    errors = []
    for doc in DOC_FILES:
        errors += check_doc(repo / doc, presets, flags, benches, tests,
                            bench_json)

    readme_flags = set(re.findall(r"--[a-z][a-z0-9-]*",
                                  (repo / "README.md").read_text()))
    for flag in sorted(REQUIRED_DOCUMENTED_FLAGS):
        if flag not in flags:
            errors.append(f"required flag `{flag}` not in "
                          "mango_sweep --help")
        if flag not in readme_flags:
            errors.append(f"required flag `{flag}` not documented "
                          "in README.md")

    for e in errors:
        print(f"dangling doc reference: {e}", file=sys.stderr)
    if not errors:
        checked = ", ".join(DOC_FILES)
        print(f"doc cross-links ok ({checked}: {len(presets)} presets, "
              f"{len(flags)} flags, {len(benches)} benches, "
              f"{len(tests)} test suites on record)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
