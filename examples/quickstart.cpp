// Quickstart: build a 2x2 MANGO mesh, open one GS connection, stream
// data across it and print the measured service.
//
//   $ ./example_quickstart
//
// Walks through the full public API: Simulator -> Network ->
// ConnectionManager -> NA traffic -> MeasurementHub.
#include <cstdio>

#include "model/timing.hpp"
#include "noc/network/connection_manager.hpp"
#include "noc/network/report.hpp"
#include "noc/network/network.hpp"
#include "noc/traffic/generator.hpp"
#include "noc/traffic/sink.hpp"
#include "noc/traffic/workload.hpp"
#include "sim/context.hpp"

using namespace mango;
using namespace mango::noc;
using sim::operator""_ns;

int main() {
  // 1. An event kernel and a 2x2 mesh of MANGO routers with the paper's
  //    demonstrator configuration (8 VCs/port, fair-share arbitration,
  //    worst-case 0.12 um timing).
  sim::SimContext ctx;
  sim::Simulator& simulator = ctx.sim();
  MeshConfig mesh;
  mesh.width = 2;
  mesh.height = 2;
  Network net(ctx, mesh);

  // 2. Measurement: record every delivered GS flit / BE packet by tag.
  MeasurementHub hub;
  attach_hub(net, hub);

  // 3. Open a GS connection (0,0) -> (1,1). open_direct programs the
  //    connection tables immediately; open_via_packets would do it with
  //    BE programming packets through the network instead.
  ConnectionManager mgr(net, NodeId{0, 0});
  const Connection& conn = mgr.open_direct(NodeId{0, 0}, NodeId{1, 1});
  std::printf("connection %u: %s -> %s, %u link hops, source iface %u\n",
              conn.id, to_string(conn.src).c_str(),
              to_string(conn.dst).c_str(), conn.link_hops(),
              conn.src_iface);

  // 4. Stream 10,000 flits at a constant rate of one flit per 4 ns
  //    (about half of this connection's guaranteed bandwidth).
  GsStreamSource::Options opt;
  opt.period_ps = 4000;
  opt.max_flits = 10000;
  GsStreamSource source(net.na(conn.src), conn.src_iface,
                        /*tag=*/1, opt);
  source.start();

  // 5. Run and report.
  simulator.run();
  FlowStats& s = hub.flow(1);
  const double guarantee = model::fair_share_guarantee_flits_per_ns(
      TimingCorner::kWorstCase, mesh.router.vcs_per_port);
  std::printf("\ndelivered %llu flits, %llu sequence errors\n",
              static_cast<unsigned long long>(s.flits),
              static_cast<unsigned long long>(s.seq_errors));
  std::printf("latency  p50 %.2f ns   p99 %.2f ns   max %.2f ns\n",
              s.latency_ns.p50(), s.latency_ns.p99(), s.latency_ns.max());
  std::printf("offered rate 0.250 flits/ns, guaranteed >= %.3f flits/ns\n",
              guarantee);
  std::printf("events simulated: %llu\n\n",
              static_cast<unsigned long long>(simulator.events_dispatched()));
  // 6. Network-wide activity summary.
  NetworkReport::collect(net, simulator.now()).print();
  return 0;
}
