// Dynamic connection management through the ConnectionBroker: GS
// circuits are requested at run time, admitted against per-link/per-VC
// accounting, programmed with BE packets over the live network
// (Section 3), used, drained and torn down — and when the fabric is
// full, requests queue until a teardown frees the path instead of
// failing.
//
// A host CPU at (0,0) orchestrates: it opens A->B, lets it stream,
// saturates the fabric's source interfaces to show admission control
// queueing a request, then closes connections and watches the parked
// request get admitted and served.
#include <cstdio>

#include "noc/network/connection_broker.hpp"
#include "noc/network/connection_manager.hpp"
#include "noc/network/network.hpp"
#include "noc/network/report.hpp"
#include "noc/traffic/generator.hpp"
#include "noc/traffic/sink.hpp"
#include "noc/traffic/workload.hpp"
#include "sim/context.hpp"

using namespace mango;
using namespace mango::noc;

namespace {

void announce(sim::Simulator& simulator, const char* what, RequestId id) {
  std::printf("t=%9s  request %u %s\n",
              sim::format_time(simulator.now()).c_str(), id, what);
}

}  // namespace

int main() {
  std::printf("Dynamic GS connections on a 3x3 MANGO mesh "
              "(ConnectionBroker)\n\n");
  sim::SimContext ctx;
  sim::Simulator& simulator = ctx.sim();
  MeshConfig mesh;
  mesh.width = 3;
  mesh.height = 3;
  Network net(ctx, mesh);
  MeasurementHub hub;
  attach_hub(net, hub);
  ConnectionManager mgr(net, NodeId{0, 0});
  ConnectionBroker broker(net, mgr, BrokerConfig{});

  // Phase 1: open (2,0) -> (0,2) through the network and stream on it.
  std::unique_ptr<GsStreamSource> stream1;
  const RequestId first = broker.request_open(
      {2, 0}, {0, 2}, [&](RequestId id, const Connection& conn) {
        std::printf("t=%9s  request %u ready (%u routers programmed via "
                    "BE packets)\n",
                    sim::format_time(simulator.now()).c_str(), id,
                    static_cast<unsigned>(conn.hops.size()));
        GsStreamSource::Options opt;
        opt.period_ps = 5000;
        opt.max_flits = 1000;
        stream1 = std::make_unique<GsStreamSource>(
            net.na(conn.src), conn.src_iface, /*tag=*/id, opt);
        stream1->start();
      });
  simulator.run();
  const FlowStats& s1 = hub.flow(first);
  std::printf("t=%9s  stream 1 finished: %llu flits, p99 %.2f ns, "
              "%llu seq errors\n",
              sim::format_time(simulator.now()).c_str(),
              static_cast<unsigned long long>(s1.flits),
              const_cast<FlowStats&>(s1).latency_ns.p99(),
              static_cast<unsigned long long>(s1.seq_errors));

  // Phase 2: exhaust (2,0)'s four GS source interfaces, then ask for a
  // fifth connection — the broker parks it instead of failing.
  std::vector<RequestId> filler;
  for (int i = 0; i < 3; ++i) {
    filler.push_back(broker.request_open({2, 0}, {0, 0}));
  }
  simulator.run();
  const RequestId parked = broker.request_open(
      {2, 0}, {2, 2},
      [&](RequestId id, const Connection&) { announce(simulator, "admitted from the queue and programmed", id); },
      [&](RequestId id) { announce(simulator, "rejected", id); });
  std::printf("t=%9s  request %u %s (queue depth %zu, blocking so far "
              "%.2f)\n",
              sim::format_time(simulator.now()).c_str(), parked,
              to_string(broker.state(parked)),
              broker.queue_depth(), broker.stats().blocking_probability());

  // Phase 3: tear down the first connection; the drain dwell runs, the
  // clear packets free the path, and the parked request is admitted.
  broker.request_close(first, [&](RequestId id) {
    announce(simulator, "torn down, resources recycled", id);
  });
  simulator.run();

  const ConnectionLifecycleReport lc = ConnectionLifecycleReport::from(broker);
  std::printf(
      "\nlifecycle: %llu requested, %llu admitted (%llu from the queue), "
      "%llu rejected, %llu closed\n"
      "setup latency p50 %.1f ns, p99 %.1f ns; teardown p50 %.1f ns\n",
      static_cast<unsigned long long>(lc.requested),
      static_cast<unsigned long long>(lc.admitted),
      static_cast<unsigned long long>(lc.retries),
      static_cast<unsigned long long>(lc.rejected),
      static_cast<unsigned long long>(lc.closed), lc.setup_p50_ns,
      lc.setup_p99_ns, lc.teardown_p50_ns);
  std::printf("\nSetup used only BE packets through the live network; no "
              "global\ncoordination or clock was needed.\n");
  return 0;
}
