// Dynamic connection management: set up GS connections at run time with
// BE programming packets (Section 3), use them, tear them down and reuse
// the VC resources for new connections.
//
// A host CPU at (0,0) orchestrates: it programs a connection A->B, lets
// it stream, closes it, then programs a different connection over the
// same links — demonstrating that "the mapping between input and output
// VCs can be considered static during connection usage" while the
// network as a whole is reconfigurable.
#include <cstdio>

#include "noc/network/connection_manager.hpp"
#include "noc/network/network.hpp"
#include "noc/traffic/generator.hpp"
#include "noc/traffic/sink.hpp"
#include "noc/traffic/workload.hpp"
#include "sim/context.hpp"

using namespace mango;
using namespace mango::noc;
using sim::operator""_us;

int main() {
  std::printf("Dynamic GS connections on a 3x3 MANGO mesh\n\n");
  sim::SimContext ctx;
  sim::Simulator& simulator = ctx.sim();
  MeshConfig mesh;
  mesh.width = 3;
  mesh.height = 3;
  Network net(ctx, mesh);
  MeasurementHub hub;
  attach_hub(net, hub);
  ConnectionManager mgr(net, NodeId{0, 0});

  // Phase 1: the host programs (2,0) -> (0,2) through the network.
  sim::Time setup1_done = 0;
  ConnectionId first_id = 0;
  std::unique_ptr<GsStreamSource> stream1;
  const Connection& c1 = mgr.open_via_packets(
      {2, 0}, {0, 2}, [&](const Connection& conn) {
        setup1_done = simulator.now();
        std::printf("t=%9s  connection %u ready (%u hops programmed via "
                    "BE packets)\n",
                    sim::format_time(setup1_done).c_str(), conn.id,
                    static_cast<unsigned>(conn.hops.size()));
        GsStreamSource::Options opt;
        opt.period_ps = 5000;
        opt.max_flits = 1000;
        stream1 = std::make_unique<GsStreamSource>(
            net.na(conn.src), conn.src_iface, conn.id, opt);
        stream1->start();
      });
  first_id = c1.id;

  simulator.run();
  const FlowStats& s1 = hub.flow(first_id);
  std::printf("t=%9s  stream 1 finished: %llu flits, p99 %.2f ns, "
              "%llu seq errors\n",
              sim::format_time(simulator.now()).c_str(),
              static_cast<unsigned long long>(s1.flits),
              const_cast<FlowStats&>(s1).latency_ns.p99(),
              static_cast<unsigned long long>(s1.seq_errors));

  // Phase 2: tear down and reuse the resources for a new connection in
  // the opposite direction.
  mgr.close_direct(first_id);
  std::printf("t=%9s  connection %u closed, VCs freed\n",
              sim::format_time(simulator.now()).c_str(), first_id);

  ConnectionId second_id = 0;
  std::unique_ptr<GsStreamSource> stream2;
  mgr.open_via_packets({0, 2}, {2, 0}, [&](const Connection& conn) {
    second_id = conn.id;
    std::printf("t=%9s  connection %u ready (reverse direction)\n",
                sim::format_time(simulator.now()).c_str(), conn.id);
    GsStreamSource::Options opt;
    opt.period_ps = 5000;
    opt.max_flits = 1000;
    stream2 = std::make_unique<GsStreamSource>(
        net.na(conn.src), conn.src_iface, conn.id, opt);
    stream2->start();
  });

  simulator.run();
  const FlowStats& s2 = hub.flow(second_id);
  std::printf("t=%9s  stream 2 finished: %llu flits, p99 %.2f ns, "
              "%llu seq errors\n",
              sim::format_time(simulator.now()).c_str(),
              static_cast<unsigned long long>(s2.flits),
              const_cast<FlowStats&>(s2).latency_ns.p99(),
              static_cast<unsigned long long>(s2.seq_errors));

  std::printf("\nSetup used only BE packets through the live network; no "
              "global\ncoordination or clock was needed.\n");
  return 0;
}
