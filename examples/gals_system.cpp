// GALS system example (Fig 1): independently clocked IP cores talking
// OCP transactions through the clockless network.
//
// A 1 GHz CPU master and a 750 MHz DSP master both use a 400 MHz memory
// slave. The cores never share a clock; each NA synchronizes its core's
// domain to the self-timed network. The example prints per-master
// transaction latencies, showing the synchronizer cost and that
// unrelated clock ratios just work.
#include <cstdio>
#include <vector>

#include "noc/na/ocp.hpp"
#include "noc/network/network.hpp"
#include "sim/stats.hpp"
#include "sim/context.hpp"

using namespace mango;
using namespace mango::noc;

namespace {

struct MasterDriver {
  OcpMaster master;
  sim::Accumulator latency_ns;
  int remaining;
  std::uint32_t addr_base;
  Network& net;
  NodeId self;
  NodeId mem;

  MasterDriver(Network& network, NodeId node, NodeId memory,
               ClockDomain clock, const char* name, int transactions,
               std::uint32_t base)
      : master(network.na(node), clock, name),
        remaining(transactions),
        addr_base(base),
        net(network),
        self(node),
        mem(memory) {}

  void pump() {
    if (remaining == 0) return;
    const bool is_write = (remaining % 2) == 0;
    OcpRequest req;
    req.cmd = is_write ? OcpCmd::kWrite : OcpCmd::kRead;
    req.addr = addr_base + static_cast<std::uint32_t>(remaining % 16);
    req.data = static_cast<std::uint32_t>(remaining);
    --remaining;
    master.issue(req, net.be_route(self, mem), net.be_route(mem, self),
                 [this](const OcpResponse& resp) {
                   latency_ns.add(
                       sim::to_ns(resp.completed_at - resp.issued_at));
                   pump();  // closed-loop: issue the next transaction
                 });
  }
};

}  // namespace

int main() {
  std::printf("GALS SoC: independently clocked cores over clockless "
              "MANGO (Fig 1)\n\n");
  sim::SimContext ctx;
  sim::Simulator& simulator = ctx.sim();
  MeshConfig mesh;
  mesh.width = 2;
  mesh.height = 2;
  Network net(ctx, mesh);

  const NodeId cpu{0, 0}, dsp{1, 0}, memory{1, 1};
  ClockDomain cpu_clk(1000, 0);     // 1 GHz
  ClockDomain dsp_clk(1333, 211);   // 750 MHz, arbitrary phase
  ClockDomain mem_clk(2500, 97);    // 400 MHz

  OcpSlave mem_slave(net.na(memory), mem_clk, "memory", 1024);
  MasterDriver cpu_drv(net, cpu, memory, cpu_clk, "cpu", 200, 0x000);
  MasterDriver dsp_drv(net, dsp, memory, dsp_clk, "dsp", 200, 0x100);

  cpu_drv.pump();
  dsp_drv.pump();
  simulator.run();

  auto report = [](const char* name, double clk_mhz, MasterDriver& d) {
    std::printf(
        "%-6s @ %6.1f MHz : %3llu transactions, latency mean %7.2f ns  "
        "min %7.2f  max %7.2f\n",
        name, clk_mhz,
        static_cast<unsigned long long>(d.master.completed()),
        d.latency_ns.mean(), d.latency_ns.min(), d.latency_ns.max());
  };
  report("cpu", 1000.0, cpu_drv);
  report("dsp", 750.2, dsp_drv);
  std::printf("memory @  400.0 MHz : %llu requests served\n",
              static_cast<unsigned long long>(mem_slave.requests_served()));
  std::printf(
      "\nEach domain crossing pays a two-flop synchronizer in the NA; no "
      "global\nclock exists anywhere in the interconnect.\n");
  return 0;
}
