// A multimedia SoC on a 4x4 MANGO mesh — the workload class the paper's
// introduction motivates: latency/jitter-critical streams (video) need
// guarantees while bursty control traffic (CPU) rides best-effort.
//
//   camera (0,3) --GS--> video processor (2,2) --GS--> display (3,0)
//   CPU (0,0) <--BE--> memory (3,3), peripherals: uniform BE background
//
// The example shows the headline property: the video pipeline's jitter
// stays bounded while BE load from the rest of the system varies.
#include <cstdio>

#include "noc/network/connection_manager.hpp"
#include "noc/network/network.hpp"
#include "noc/traffic/generator.hpp"
#include "noc/traffic/sink.hpp"
#include "noc/traffic/workload.hpp"
#include "sim/context.hpp"

using namespace mango;
using namespace mango::noc;
using sim::operator""_ns;
using sim::operator""_us;

namespace {
constexpr std::uint32_t kCameraTag = 1;
constexpr std::uint32_t kDisplayTag = 2;

void run_phase(const char* name, sim::Time be_interarrival_ps) {
  sim::SimContext ctx;
  sim::Simulator& simulator = ctx.sim();
  MeshConfig mesh;
  mesh.width = 4;
  mesh.height = 4;
  Network net(ctx, mesh);
  MeasurementHub hub;
  attach_hub(net, hub);
  ConnectionManager mgr(net, NodeId{0, 0});

  // GS video pipeline: camera -> processor -> display. A 16-bit 25 fps
  // video stream needs a steady flit rate; we use one flit per 8 ns.
  const Connection& cam = mgr.open_direct({0, 3}, {2, 2});
  const Connection& disp = mgr.open_direct({2, 2}, {3, 0});
  GsStreamSource::Options video;
  video.period_ps = 8000;
  video.max_flits = 4000;
  GsStreamSource camera(net.na({0, 3}), cam.src_iface, kCameraTag,
                        video);
  camera.start();
  // The processor relays frames onward at the same rate.
  GsStreamSource processor(net.na({2, 2}), disp.src_iface,
                           kDisplayTag, video);
  processor.start();

  // BE background from every node (CPU/memory/peripheral chatter).
  // An interarrival of 0 means "no BE traffic" in this example.
  std::vector<std::unique_ptr<BeTrafficSource>> be;
  if (be_interarrival_ps > 0) {
    be = start_uniform_be(net, be_interarrival_ps, /*payload=*/6,
                          /*seed=*/2026);
  }

  hub.set_horizon(40_us);
  simulator.run_until(40_us);
  for (auto& src : be) src->stop();

  FlowStats& v = hub.flow(kDisplayTag);
  std::uint64_t be_packets = 0;
  double be_p99 = 0.0;
  for (auto& [tag, s] : hub.flows_by_tag()) {
    if (tag >= kBeTagBase) {
      be_packets += s->packets;
      be_p99 = std::max(be_p99, s->latency_ns.p99());
    }
  }
  std::printf(
      "%-18s | video p50 %7.2f ns  p99 %7.2f ns  max %7.2f ns  "
      "(seq errs %llu) | BE pkts %6llu  worst p99 %8.1f ns\n",
      name, v.latency_ns.p50(), v.latency_ns.p99(), v.latency_ns.max(),
      static_cast<unsigned long long>(v.seq_errors),
      static_cast<unsigned long long>(be_packets), be_p99);
}
}  // namespace

int main() {
  std::printf("Multimedia SoC on a 4x4 MANGO mesh — video on GS "
              "connections, system traffic on BE\n\n");
  run_phase("BE idle", 0);  // 0 disabled below
  run_phase("BE light load", 40000);
  run_phase("BE heavy load", 6000);
  std::printf(
      "\nThe video stream's latency distribution is unaffected by the BE "
      "load:\nGS connections are logically independent of best-effort "
      "traffic (Section 2).\n");
  return 0;
}
